package cluster

import (
	"context"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/service"
)

// Replica is one pasmd instance behind the gateway: its stable name
// (the consistent-hash identity), its client, its circuit breaker, and
// the last health snapshot the active checker took.
type Replica struct {
	Name string
	Addr string

	cl      *client.Client
	breaker *Breaker

	mu          sync.Mutex
	alive       bool // last active health check answered
	health      service.HealthInfo
	lastErr     string
	lastChecked time.Time
	checks      int64
	checkFails  int64
	forwarded   int64 // requests the gateway sent here
	failures    int64 // forwarded requests that failed (passive accounting)
}

// Client returns the replica's API client.
func (r *Replica) Client() *client.Client { return r.cl }

// Breaker returns the replica's circuit breaker.
func (r *Replica) Breaker() *Breaker { return r.breaker }

// Snapshot returns the last active health check's view.
func (r *Replica) Snapshot() (alive bool, h service.HealthInfo) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.alive, r.health
}

// load is the routing weight for least-loaded ordering: queued plus
// executing jobs. Unknown (never-checked or dead) replicas weigh
// heavier than any observed load so live ones win.
func (r *Replica) load() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.alive {
		return 1 << 30
	}
	return r.health.QueueDepth + r.health.InFlight
}

// Routable reports whether new submissions may go here: the breaker
// must admit the request and the replica must not be draining. (A
// replica that has never been health-checked is still routable — the
// breaker, not the checker, is the gate — so the gateway works before
// the first check completes and keeps trying replicas the checker has
// not caught up with.)
func (r *Replica) Routable(now time.Time) bool {
	r.mu.Lock()
	draining := r.alive && r.health.Draining
	r.mu.Unlock()
	if draining {
		return false
	}
	return r.breaker.Allow(now)
}

// Report feeds a request outcome into the breaker and the passive
// failure tallies.
func (r *Replica) Report(ok bool, now time.Time) {
	r.mu.Lock()
	r.forwarded++
	if !ok {
		r.failures++
	}
	r.mu.Unlock()
	r.breaker.Report(ok, now)
}

// Registry owns the replica set and runs the active health loop: every
// interval, each replica's enriched /healthz is fetched; the snapshot
// feeds least-loaded routing and drain awareness, and the outcome
// feeds the breaker — which is how an open breaker's probe goes out
// even when no client traffic would be allowed through it.
type Registry struct {
	replicas []*Replica
	interval time.Duration
	timeout  time.Duration
	now      func() time.Time

	started  atomic.Bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// ReplicaSpec names one replica for NewRegistry: "name=addr", or a
// bare address (names default to r0, r1, ... in order). Names must not
// contain "~" (the gateway's job-ID separator).
func parseReplicaSpec(i int, s string) (name, addr string, err error) {
	name, addr, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Sprintf("r%d", i), s, nil
	}
	if name == "" || strings.Contains(name, "~") || strings.Contains(name, "/") {
		return "", "", fmt.Errorf("cluster: bad replica name %q (non-empty, no '~' or '/')", name)
	}
	return name, addr, nil
}

// RegistryConfig configures the replica set and health loop.
type RegistryConfig struct {
	// Replicas are "name=addr" or bare-address entries, in ring order.
	Replicas []string
	// HealthInterval is the active check period. Default 1s.
	HealthInterval time.Duration
	// HealthTimeout bounds one check. Default half the interval.
	HealthTimeout time.Duration
	// Breaker tunes every replica's breaker; each replica's jitter seed
	// is Breaker.Seed mixed with its index so probes desynchronize.
	Breaker BreakerConfig
	// Transport, when non-nil, wraps every replica client's HTTP
	// transport (fault injection).
	Transport http.RoundTripper
	// FillSecret authenticates peer-fill pushes to the replicas' fill
	// endpoints (every replica must run with the same secret). Empty
	// means the replicas have fills disabled and the gateway should run
	// with DisablePeerFill.
	FillSecret string

	now func() time.Time
}

// NewRegistry builds the replica set. Start launches the health loop.
func NewRegistry(cfg RegistryConfig) (*Registry, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("cluster: no replicas")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = time.Second
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = cfg.HealthInterval / 2
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	reg := &Registry{
		interval: cfg.HealthInterval,
		timeout:  cfg.HealthTimeout,
		now:      cfg.now,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	seen := map[string]bool{}
	for i, s := range cfg.Replicas {
		name, addr, err := parseReplicaSpec(i, s)
		if err != nil {
			return nil, err
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", name)
		}
		seen[name] = true
		bcfg := cfg.Breaker
		bcfg.Seed = cfg.Breaker.Seed ^ (uint64(i+1) * 0x9e3779b97f4a7c15)
		cl := client.New(addr)
		if cfg.Transport != nil {
			cl.WithTransport(cfg.Transport)
		}
		if cfg.FillSecret != "" {
			cl.WithFillSecret(cfg.FillSecret)
		}
		reg.replicas = append(reg.replicas, &Replica{
			Name:    name,
			Addr:    addr,
			cl:      cl,
			breaker: NewBreaker(bcfg),
		})
	}
	return reg, nil
}

// Replicas returns the replica set in registration (ring) order.
func (g *Registry) Replicas() []*Replica { return g.replicas }

// Names returns the replica names in registration order.
func (g *Registry) Names() []string {
	out := make([]string, len(g.replicas))
	for i, r := range g.replicas {
		out[i] = r.Name
	}
	return out
}

// Find returns the replica with the given name.
func (g *Registry) Find(name string) (*Replica, bool) {
	for _, r := range g.replicas {
		if r.Name == name {
			return r, true
		}
	}
	return nil, false
}

// Healthy counts replicas whose last active check answered.
func (g *Registry) Healthy() int {
	n := 0
	for _, r := range g.replicas {
		if alive, _ := r.Snapshot(); alive {
			n++
		}
	}
	return n
}

// Start launches the health loop (one goroutine; replicas are checked
// concurrently each tick). Stop with Stop. A second Start is a no-op.
func (g *Registry) Start() {
	if !g.started.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer close(g.done)
		g.CheckAll() // prime the snapshots before the first tick
		ticker := time.NewTicker(g.interval)
		defer ticker.Stop()
		for {
			select {
			case <-ticker.C:
				g.CheckAll()
			case <-g.stop:
				return
			}
		}
	}()
}

// Stop ends the health loop. Safe to call even when Start never ran
// (the error-path defer of a caller that failed before Start) — done is
// only closed by the loop goroutine, so waiting on it is gated on the
// loop having launched.
func (g *Registry) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	if g.started.Load() {
		<-g.done
	}
}

// CheckAll health-checks every replica once, concurrently, and blocks
// until all checks resolve (exported for tests and for priming).
func (g *Registry) CheckAll() {
	var wg sync.WaitGroup
	for _, r := range g.replicas {
		wg.Add(1)
		go func(r *Replica) {
			defer wg.Done()
			g.checkOne(r)
		}(r)
	}
	wg.Wait()
}

// checkOne fetches one replica's /healthz. The outcome updates the
// snapshot and — breaker-gated when the breaker is not closed — feeds
// the breaker: a closed breaker sees failures (so a dead-but-idle
// replica still opens it) and successes (resetting the consecutive
// count); an open breaker's allowed check is exactly the half-open
// probe that can close it.
func (g *Registry) checkOne(r *Replica) {
	now := g.now()
	probe := true
	if st := r.breaker.State(); st != StateClosed {
		probe = r.breaker.Allow(now)
		if !probe {
			return // open and inside cooldown: skip the request entirely
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), g.timeout)
	defer cancel()
	h, err := r.cl.HealthInfo(ctx)
	r.mu.Lock()
	r.checks++
	r.lastChecked = now
	if err != nil {
		r.checkFails++
		r.alive = false
		r.lastErr = err.Error()
	} else {
		r.alive = true
		r.health = h
		r.lastErr = ""
	}
	r.mu.Unlock()
	r.breaker.Report(err == nil, g.now())
}
