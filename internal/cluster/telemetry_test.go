package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/client"
	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// startTracedReplica runs a pasmd service with a tracer attached so
// propagation tests can inspect the replica-side trace.
func startTracedReplica(t *testing.T, name string) (*telemetry.Tracer, *httptest.Server) {
	t.Helper()
	tr := telemetry.New(telemetry.Config{Component: "pasmd/" + name, Seed: 11})
	s := service.New(service.Config{Workers: 2, QueueDepth: 16, Name: name,
		FillSecret: testFillSecret,
		Telemetry:  tr,
		Options:    experiments.DefaultOptions()})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		srv.Close()
	})
	return tr, srv
}

// TestGatewayTracePropagation: a client-minted trace context flows
// through the gateway (route + attempt spans) into the serving replica
// (admit/queue/run spans) under one trace ID, and both hops expose it
// on /debug/requests.
func TestGatewayTracePropagation(t *testing.T) {
	ta, ra := startTracedReplica(t, "a")
	tb, rb := startTracedReplica(t, "b")
	gwTracer := telemetry.New(telemetry.Config{Component: "pasmgw", Seed: 12})
	_, gsrv := startGateway(t, Config{
		Registry:  RegistryConfig{Replicas: []string{"a=" + ra.URL, "b=" + rb.URL}},
		Telemetry: gwTracer,
	})

	const trace = "00000000cafef00d"
	cl := client.New(gsrv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, _, err := cl.Run(ctx, specN(21), client.SubmitOptions{
		Wait:        10 * time.Second,
		TraceHeader: trace,
	}); err != nil {
		t.Fatalf("traced run: %v", err)
	}

	// Gateway hop: route span with policy/owner, one attempt span.
	gw := gwTracer.Lookup(trace)
	if gw == nil {
		t.Fatalf("gateway did not record trace %s", trace)
	}
	gwSnap := gw.Snapshot()
	spans := map[string]telemetry.SpanSnapshot{}
	for _, sp := range gwSnap.Spans {
		spans[sp.Name] = sp
	}
	route, ok := spans["route"]
	if !ok {
		t.Fatalf("gateway trace lacks route span: %+v", gwSnap.Spans)
	}
	attrs := map[string]any{}
	for _, a := range route.Attrs {
		attrs[a.Key] = a.Value
	}
	if attrs["policy"] != string(PolicyHash) {
		t.Errorf("route policy attr = %v, want %q", attrs["policy"], PolicyHash)
	}
	if _, ok := spans["attempt"]; !ok {
		t.Fatalf("gateway trace lacks attempt span: %+v", gwSnap.Spans)
	}

	// Replica hop: the same trace ID continued on whichever replica
	// served, with the full admit/queue/run stage set.
	var rep *telemetry.Req
	for _, tr := range []*telemetry.Tracer{ta, tb} {
		if r := tr.Lookup(trace); r != nil {
			rep = r
			break
		}
	}
	if rep == nil {
		t.Fatalf("no replica recorded trace %s", trace)
	}
	repSnap := rep.Snapshot()
	got := map[string]bool{}
	for _, sp := range repSnap.Spans {
		got[sp.Name] = true
	}
	for _, want := range []string{"admit", "queue", "run"} {
		if !got[want] {
			t.Errorf("replica trace missing %q span; have %+v", want, repSnap.Spans)
		}
	}
	if repSnap.Parent == "" {
		t.Errorf("replica trace did not continue the gateway's span context")
	}

	// Both hops serve the trace on /debug/requests.
	resp, err := http.Get(gsrv.URL + "/debug/requests/" + trace)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("gateway /debug/requests/%s: %d", trace, resp.StatusCode)
	}
	var body telemetry.ReqSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Trace != trace {
		t.Fatalf("debug snapshot trace = %q", body.Trace)
	}
}

// TestGatewayMetricsAggregation: the gateway merges the replicas'
// per-stage latency histograms bucket-by-bucket into cluster-level
// quantiles, and its own per-policy/per-outcome submit latency shows
// up under cluster/submit_ms.
func TestGatewayMetricsAggregation(t *testing.T) {
	_, ra := startReplica(t, "a")
	_, rb := startReplica(t, "b")
	g, gsrv := startGateway(t, Config{
		Registry: RegistryConfig{Replicas: []string{"a=" + ra.URL, "b=" + rb.URL}},
		Policy:   PolicyRoundRobin, // spread jobs across both replicas
	})

	cl := client.New(gsrv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const jobs = 4
	for i := 0; i < jobs; i++ {
		if _, _, err := cl.Run(ctx, specN(uint32(40+i)), client.SubmitOptions{Wait: 20 * time.Second}); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	m := g.Metrics(ctx)
	if got := m["cluster/total_ms/count"]; got != jobs {
		t.Errorf("cluster/total_ms/count = %v, want %d", got, jobs)
	}
	for _, key := range []string{
		"cluster/total_ms/p50", "cluster/total_ms/p99",
		"cluster/run_ms/p95", "cluster/queue_wait_ms/count",
	} {
		if _, ok := m[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
	// Aggregated count equals the sum over replicas — nothing dropped.
	var perReplica float64
	for _, srv := range []*httptest.Server{ra, rb} {
		rm, err := client.New(srv.URL).Metrics(ctx)
		if err != nil {
			t.Fatal(err)
		}
		perReplica += rm["service/total_ms/count"]
	}
	if m["cluster/total_ms/count"] != perReplica {
		t.Errorf("aggregated count %v != replica sum %v", m["cluster/total_ms/count"], perReplica)
	}
	// Gateway-side submit latency, keyed by policy and outcome.
	accepted := "cluster/submit_ms/policy=round-robin/outcome=accepted/count"
	if got := m[accepted]; got != jobs {
		t.Errorf("%s = %v, want %d", accepted, got, jobs)
	}
	_ = gsrv
}
