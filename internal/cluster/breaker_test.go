package cluster

import (
	"testing"
	"time"
)

// TestBreakerConsecutiveFailures walks the full state machine: closed
// opens after N back-to-back failures, open rejects until the probe
// deadline, exactly one half-open probe goes out, and a good probe
// closes it again.
func TestBreakerConsecutiveFailures(t *testing.T) {
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 3, Cooldown: 10 * time.Second, Seed: 7})
	now := time.Unix(1000, 0)

	for i := 0; i < 2; i++ {
		b.Report(false, now)
		if b.State() != StateClosed {
			t.Fatalf("after %d failures: state %v, want closed", i+1, b.State())
		}
	}
	b.Report(false, now)
	if b.State() != StateOpen {
		t.Fatalf("after 3 failures: state %v, want open", b.State())
	}

	// Open: rejects inside the cooldown (jitter lower bound is
	// cooldown/2, so 1s in is always inside).
	if b.Allow(now.Add(time.Second)) {
		t.Fatal("open breaker allowed a request 1s into a 10s cooldown")
	}
	if opens, _, rejects := counters(b); opens != 1 || rejects != 1 {
		t.Fatalf("opens=%d rejects=%d, want 1, 1", opens, rejects)
	}

	// Past the jitter upper bound the breaker goes half-open and admits
	// exactly one probe.
	probeTime := now.Add(11 * time.Second)
	if !b.Allow(probeTime) {
		t.Fatal("breaker did not admit the probe after the full cooldown")
	}
	if b.State() != StateHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if b.Allow(probeTime) {
		t.Fatal("second request admitted while the probe is in flight")
	}

	b.Report(true, probeTime)
	if b.State() != StateClosed {
		t.Fatalf("after good probe: state %v, want closed", b.State())
	}
	if !b.Allow(probeTime) {
		t.Fatal("closed breaker rejected")
	}
}

func counters(b *Breaker) (int64, int64, int64) {
	o, c, r := b.Counters()
	return o, c, r
}

// TestBreakerProbeFailureDoublesCooldown: a failed probe reopens the
// breaker with a doubled cooldown (still jittered within
// [cooldown/2, cooldown]), capped at MaxCooldown.
func TestBreakerProbeFailureDoublesCooldown(t *testing.T) {
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 1, Cooldown: 4 * time.Second, MaxCooldown: 8 * time.Second, Seed: 3})
	now := time.Unix(0, 0)
	b.Report(false, now) // open, cooldown 4s, probe within [2s, 4s]

	probe1 := now.Add(4 * time.Second)
	if !b.Allow(probe1) {
		t.Fatal("probe 1 not admitted at full cooldown")
	}
	b.Report(false, probe1) // reopen, cooldown 8s, probe within [4s, 8s]
	if b.State() != StateOpen {
		t.Fatalf("state %v, want open after failed probe", b.State())
	}
	if b.Allow(probe1.Add(3 * time.Second)) {
		t.Fatal("probe admitted before the doubled cooldown's jitter floor")
	}
	probe2 := probe1.Add(8 * time.Second)
	if !b.Allow(probe2) {
		t.Fatal("probe 2 not admitted at doubled cooldown")
	}
	b.Report(false, probe2) // cooldown would be 16s but caps at 8s
	if b.Allow(probe2.Add(3 * time.Second)) {
		t.Fatal("probe admitted before the capped cooldown's jitter floor")
	}
	if !b.Allow(probe2.Add(8 * time.Second)) {
		t.Fatal("probe 3 not admitted at capped cooldown")
	}
	// A good probe resets the backoff to the base cooldown.
	goodAt := probe2.Add(8 * time.Second)
	b.Report(true, goodAt)
	b.Report(false, goodAt)
	if !b.Allow(goodAt.Add(4 * time.Second)) {
		t.Fatal("cooldown did not reset to base after recovery")
	}
}

// TestBreakerErrorRate: interleaved failures that never trip the
// consecutive rule still open the breaker once the windowed error rate
// crosses the threshold with enough samples.
func TestBreakerErrorRate(t *testing.T) {
	b := NewBreaker(BreakerConfig{
		ConsecutiveFailures: 100, // effectively off
		ErrorRateThreshold:  0.5,
		MinSamples:          4,
		Window:              8,
		Cooldown:            time.Second,
	})
	now := time.Unix(0, 0)
	b.Report(true, now)
	b.Report(false, now)
	b.Report(true, now)
	if b.State() != StateClosed {
		t.Fatalf("opened below MinSamples: %v", b.State())
	}
	b.Report(false, now) // window o,f,o,f: rate 0.5 at 4 samples
	if b.State() != StateOpen {
		t.Fatalf("state %v, want open at 50%% error rate", b.State())
	}
}

// TestBreakerCancel: canceling the half-open probe frees the slot
// without recording an outcome, so the next request probes again.
func TestBreakerCancel(t *testing.T) {
	b := NewBreaker(BreakerConfig{ConsecutiveFailures: 1, Cooldown: 2 * time.Second})
	now := time.Unix(0, 0)
	b.Report(false, now)
	probeAt := now.Add(2 * time.Second)
	if !b.Allow(probeAt) {
		t.Fatal("probe not admitted")
	}
	b.Cancel()
	if b.State() != StateHalfOpen {
		t.Fatalf("state %v, want half-open after cancel", b.State())
	}
	if !b.Allow(probeAt) {
		t.Fatal("probe slot not freed by cancel")
	}
	b.Report(true, probeAt)
	if b.State() != StateClosed {
		t.Fatalf("state %v, want closed", b.State())
	}
}

// TestBreakerJitterDeterministic: same seed, same history, same probe
// deadlines — the jitter stream is reproducible.
func TestBreakerJitterDeterministic(t *testing.T) {
	mk := func(seed uint64) *Breaker {
		return NewBreaker(BreakerConfig{ConsecutiveFailures: 1, Cooldown: 10 * time.Second, Seed: seed})
	}
	now := time.Unix(0, 0)
	a, b := mk(42), mk(42)
	a.Report(false, now)
	b.Report(false, now)
	// Walk time forward second by second; both must flip at the same
	// instant.
	for s := 5; s <= 10; s++ {
		at := now.Add(time.Duration(s) * time.Second)
		if a.Allow(at) != b.Allow(at) {
			t.Fatalf("same-seed breakers diverged at +%ds", s)
		}
		if a.State() == StateHalfOpen {
			return // both flipped together
		}
	}
	t.Fatal("breaker never reached half-open within the cooldown")
}
