package pasm

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/m68k"
)

// procState is one PE's scheduling state in the MIMD engine.
type procState uint8

const (
	stRun  procState = iota // executing pure computation
	stAtOp                  // stopped at a device operation, eligible to perform it
	stWait                  // device refused; waiting for an enabling event
	stHalt                  // HALT executed
	stPark                  // jumped into the SIMD space (mixed-mode rejoin)
)

// RunMIMD executes the same program asynchronously on every PE of the
// partition: the paper's MIMD mode (and, when the program reads the
// SIMD space for barrier synchronization, the hybrid S/MIMD mode; with
// P=1 it is the serial SISD mode). The MCs only start the PE programs,
// which is a constant the measurements exclude.
func (vm *VM) RunMIMD(prog *m68k.Program) (RunResult, error) {
	if len(prog.Instrs) == 0 {
		return RunResult{}, fmt.Errorf("pasm: empty program")
	}
	vm.net.reset()
	vm.bar = newBarrier(vm.P)

	cpus := make([]*m68k.CPU, vm.P)
	for i, pe := range vm.PEs {
		cpu := m68k.NewCPU(prog, pe.Mem)
		cpu.FetchFromMem = true
		cpu.FixedMulCycles = vm.Cfg.FixedMulCycles
		cpu.DisableExecTable = vm.Cfg.DisableExecTable
		cpu.DisableSuperinstructions = vm.Cfg.DisableSuperinstructions
		cpu.A[7] = pe.Mem.Size() - 4
		pe.dev.bar = vm.bar
		cpu.Dev = pe.dev
		if vm.TraceHook != nil {
			vm.TraceHook(fmt.Sprintf("PE%d", i), cpu)
		}
		cpus[i] = cpu
	}
	vm.wireObsPEs(cpus)

	memoH, memoM := vm.MemoHits(), vm.MemoMisses()
	if err := vm.runDES(cpus, false); err != nil {
		return RunResult{}, err
	}

	res := RunResult{PEClocks: make([]int64, vm.P)}
	var critical *m68k.CPU
	for i, cpu := range cpus {
		res.PEClocks[i] = cpu.Clock
		if cpu.Clock > res.Cycles {
			res.Cycles = cpu.Clock
			critical = cpu
		}
		res.Instrs += cpu.InstrCount
	}
	if critical != nil {
		res.Regions = critical.Regions
	}
	res.BarrierRounds = vm.bar.rounds
	res.NetTransfers = vm.net.transfers
	res.NetReconfigs = vm.net.reconfigs
	res.MemoHits = vm.MemoHits() - memoH
	res.MemoMisses = vm.MemoMisses() - memoM
	vm.finishObsPEs(cpus)
	return res, nil
}

// runDES is the conservative discrete-event engine shared by the MIMD
// mode and the mixed-mode MIMD sections of SIMD programs.
//
// Each PE runs its pure computation freely (PEs share no memory), but
// device operations — network transfer registers, status polls,
// barrier reads — are performed in global timestamp order: CPUs are
// advanced with their device bus disarmed so they stop just before the
// operation, and the operation with the smallest clock is performed
// first. Wait times are charged by the devices themselves from
// timestamps (data arrival, register-free, barrier release), so the
// blocked instruction's accounting region absorbs the wait — exactly
// the attribution the paper's Figures 8-10 break out.
//
// With stopOnJump, a PE that jumps into the SIMD instruction space
// (the MIMD-to-SIMD mode switch of paper Section 3) parks, and the
// engine returns once every PE has parked or halted; otherwise such a
// jump is an error and only HALT terminates a PE.
func (vm *VM) runDES(cpus []*m68k.CPU, stopOnJump bool) error {
	active := -1
	state := make([]procState, len(cpus))
	for _, pe := range vm.PEs {
		pe.dev.armed = &active
	}
	defer func() {
		for _, pe := range vm.PEs {
			pe.dev.armed = nil
		}
	}()

	terminal := func(s procState) bool { return s == stHalt || s == stPark }
	classify := func(i int, st m68k.Status) error {
		switch st {
		case m68k.StatusOK:
			state[i] = stRun
		case m68k.StatusBlocked:
			state[i] = stAtOp
		case m68k.StatusHalted:
			state[i] = stHalt
		case m68k.StatusSIMDJump:
			if !stopOnJump {
				return fmt.Errorf("pasm: PE %d jumped into the SIMD space outside mixed-mode execution", i)
			}
			state[i] = stPark
		case m68k.StatusBcast, m68k.StatusSetMask:
			return fmt.Errorf("pasm: PE %d executed an MC-only instruction in MIMD mode", i)
		default:
			return fmt.Errorf("pasm: PE %d: %w", i, cpus[i].Err)
		}
		return nil
	}

	var total int64
	// run executes one PE's computation segment to its next device
	// operation (or halt/park/error). The shared step budget is
	// consumed atomically so parallel segments observe the same
	// runaway guard as serial execution.
	run := func(cpu *m68k.CPU) (m68k.Status, bool, int64) {
		var slices int64
		for {
			st := cpu.Run(memoSliceSteps)
			slices++
			if atomic.AddInt64(&total, memoSliceSteps) > vm.Cfg.MaxSteps {
				return st, true, slices
			}
			if st != m68k.StatusOK {
				return st, false, slices
			}
			// Budget slice exhausted; keep running.
		}
	}
	memo := vm.memoFor(cpus[0].Prog, len(cpus))
	advance := func(i int, cpu *m68k.CPU) (m68k.Status, bool) {
		if memo != nil {
			return memo.advance(vm, i, cpu, &total, run)
		}
		st, overrun, _ := run(cpu)
		return st, overrun
	}
	var runIdx []int
	sts := make([]m68k.Status, len(cpus))
	overrun := make([]bool, len(cpus))
	for {
		// Phase 1: advance every running PE to its next device
		// operation (devices disarmed: active == -1 matches no PE).
		// The segments are independent — PEs share no memory and a
		// disarmed device bus refuses access before touching any
		// shared network or barrier state — so they may execute on
		// separate host goroutines. All engine state (state[], total
		// overrun, classification order) is updated serially after the
		// join, in PE index order, keeping the simulation
		// byte-identical to serial execution.
		runIdx = runIdx[:0]
		for i := range cpus {
			if state[i] == stRun {
				runIdx = append(runIdx, i)
			}
		}
		if w := vm.Cfg.HostWorkers; w > 1 && len(runIdx) > 1 {
			if w > len(runIdx) {
				w = len(runIdx)
			}
			var next int64 = -1
			var wg sync.WaitGroup
			for j := 0; j < w; j++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for {
						k := int(atomic.AddInt64(&next, 1))
						if k >= len(runIdx) {
							return
						}
						sts[k], overrun[k] = advance(runIdx[k], cpus[runIdx[k]])
					}
				}()
			}
			wg.Wait()
		} else {
			for k, i := range runIdx {
				sts[k], overrun[k] = advance(i, cpus[i])
			}
		}
		live := false
		for k, i := range runIdx {
			if overrun[k] {
				return fmt.Errorf("pasm: MIMD run exceeded %d steps", vm.Cfg.MaxSteps)
			}
			if err := classify(i, sts[k]); err != nil {
				return err
			}
		}
		for i := range cpus {
			if !terminal(state[i]) {
				live = true
				break
			}
		}
		if !live {
			return nil // every PE halted or parked
		}
		// Phase 2: perform the globally earliest pending device op.
		pick := -1
		for i := range cpus {
			if state[i] == stAtOp && (pick == -1 || cpus[i].Clock < cpus[pick].Clock) {
				pick = i
			}
		}
		if pick == -1 {
			waiters := []int{}
			for i := range cpus {
				if state[i] == stWait {
					waiters = append(waiters, i)
				}
			}
			return fmt.Errorf("pasm: deadlock: PEs %v waiting with no pending events", waiters)
		}
		active = pick
		st := cpus[pick].Step()
		active = -1
		if st == m68k.StatusBlocked {
			state[pick] = stWait
			continue
		}
		if err := classify(pick, st); err != nil {
			return err
		}
		// A completed device operation may enable any waiter.
		for i := range state {
			if state[i] == stWait {
				state[i] = stAtOp
			}
		}
	}
}
