package pasm

import (
	"testing"

	"repro/internal/m68k"
)

func newTestSystem(t *testing.T) *System {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PEMemBytes = 1 << 16
	s, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPartitionAllocationAlignment(t *testing.T) {
	s := newTestSystem(t)
	vm8, err := s.Partition(8)
	if err != nil {
		t.Fatal(err)
	}
	if vm8.Base != 0 {
		t.Errorf("first p=8 partition at base %d, want 0", vm8.Base)
	}
	vm4, err := s.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	if vm4.Base != 8 {
		t.Errorf("p=4 partition at base %d, want 8", vm4.Base)
	}
	vm2, err := s.Partition(2)
	if err != nil {
		t.Fatal(err)
	}
	if vm2.Base != 12 {
		t.Errorf("p=2 partition at base %d, want 12", vm2.Base)
	}
	if s.FreePEs() != 2 {
		t.Errorf("FreePEs = %d, want 2", s.FreePEs())
	}
	// A p=4 partition needs an aligned block: only 14..15 remain.
	if _, err := s.Partition(4); err == nil {
		t.Error("unaligned/unavailable partition accepted")
	}
	if err := s.Release(vm4); err != nil {
		t.Fatal(err)
	}
	if s.FreePEs() != 6 {
		t.Errorf("FreePEs after release = %d", s.FreePEs())
	}
	// Now 8..11 is free and aligned again.
	if _, err := s.Partition(4); err != nil {
		t.Errorf("re-allocation failed: %v", err)
	}
	_ = vm8
}

func TestReleaseValidation(t *testing.T) {
	s := newTestSystem(t)
	vm, err := s.Partition(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Release(vm); err != nil {
		t.Fatal(err)
	}
	if err := s.Release(vm); err == nil {
		t.Error("double release accepted")
	}
	if err := s.Release(nil); err == nil {
		t.Error("nil release accepted")
	}
}

func TestPartitionSizeValidation(t *testing.T) {
	s := newTestSystem(t)
	for _, bad := range []int{0, 3, 32, -4} {
		if _, err := s.Partition(bad); err == nil {
			t.Errorf("Partition(%d) accepted", bad)
		}
	}
}

func TestRunJobsConcurrently(t *testing.T) {
	s := newTestSystem(t)
	mkJob := func(name string, p int, value uint16) Job {
		return Job{
			Name: name,
			P:    p,
			Run: func(vm *VM) (RunResult, error) {
				prog := m68k.MustAssemble(`
					move.w  $100, d0
					mulu.w  d0, d0
					move.w  d0, $102
					halt
				`)
				for _, pe := range vm.PEs {
					if err := pe.Mem.WriteWords(0x100, []uint16{value}); err != nil {
						return RunResult{}, err
					}
				}
				if err := vm.EstablishShift(); err != nil {
					return RunResult{}, err
				}
				res, err := vm.RunMIMD(prog)
				if err != nil {
					return RunResult{}, err
				}
				for _, pe := range vm.PEs {
					v, _ := pe.Mem.Read(0x102, m68k.Word)
					if v != uint32(value)*uint32(value)&0xFFFF {
						return RunResult{}, errWrong
					}
				}
				return res, nil
			},
		}
	}
	jobs := []Job{
		mkJob("alpha", 8, 11),
		mkJob("beta", 4, 22),
		mkJob("gamma", 2, 33),
		mkJob("delta", 2, 44),
	}
	results, err := s.RunJobs(jobs)
	if err != nil {
		t.Fatal(err)
	}
	bases := map[int]bool{}
	for _, r := range results {
		if r.Err != nil {
			t.Errorf("job %s: %v", r.Name, r.Err)
		}
		if r.Result.Cycles == 0 {
			t.Errorf("job %s: no cycles", r.Name)
		}
		if bases[r.Base] {
			t.Errorf("job %s shares base %d", r.Name, r.Base)
		}
		bases[r.Base] = true
	}
	if s.FreePEs() != 16 {
		t.Errorf("PEs leaked: %d free", s.FreePEs())
	}
}

func TestRunJobsOverallocation(t *testing.T) {
	s := newTestSystem(t)
	jobs := []Job{
		{Name: "a", P: 16, Run: func(vm *VM) (RunResult, error) { return RunResult{}, nil }},
		{Name: "b", P: 2, Run: func(vm *VM) (RunResult, error) { return RunResult{}, nil }},
	}
	if _, err := s.RunJobs(jobs); err == nil {
		t.Error("over-allocation accepted")
	}
	if s.FreePEs() != 16 {
		t.Errorf("failed RunJobs leaked PEs: %d free", s.FreePEs())
	}
}

var errWrong = &wrongResultError{}

type wrongResultError struct{}

func (*wrongResultError) Error() string { return "wrong result" }

func TestConcurrentMatmulPartitions(t *testing.T) {
	// Two independent partitions multiplying different matrices
	// concurrently must produce exactly the same results and timings
	// as when run alone (partitions share nothing).
	s := newTestSystem(t)

	soloVM := newTestVM(t, 4, nil)
	prog := m68k.MustAssemble(simdSum)
	for i, pe := range soloVM.PEs {
		pe.Mem.WriteWords(0x100, []uint16{uint16(i + 1)})
	}
	solo, err := soloVM.RunSIMD(prog)
	if err != nil {
		t.Fatal(err)
	}

	job := func(name string) Job {
		return Job{Name: name, P: 4, Run: func(vm *VM) (RunResult, error) {
			if err := vm.EstablishShift(); err != nil {
				return RunResult{}, err
			}
			for i, pe := range vm.PEs {
				if err := pe.Mem.WriteWords(0x100, []uint16{uint16(i + 1)}); err != nil {
					return RunResult{}, err
				}
			}
			return vm.RunSIMD(m68k.MustAssemble(simdSum))
		}}
	}
	results, err := s.RunJobs([]Job{job("left"), job("right")})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("%s: %v", r.Name, r.Err)
		}
		if r.Result.Cycles != solo.Cycles {
			t.Errorf("%s: %d cycles, solo run took %d (partitions must be independent)",
				r.Name, r.Result.Cycles, solo.Cycles)
		}
	}
}

func TestSystemAccessors(t *testing.T) {
	s := newTestSystem(t)
	if s.Config().NumPEs != 16 {
		t.Errorf("Config.NumPEs = %d", s.Config().NumPEs)
	}
}

func TestConfigValidateBranches(t *testing.T) {
	base := DefaultConfig()
	muts := []func(*Config){
		func(c *Config) { c.NumPEs = 3 },
		func(c *Config) { c.PEsPerMC = 5 },
		func(c *Config) { c.QueueDepthWords = 1 },
		func(c *Config) { c.QueueWordCycles = 0 },
		func(c *Config) { c.PEMemBytes = 16 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MaxSteps = 0 },
	}
	for i, mut := range muts {
		cfg := base
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestVMAccessorsAndPermutation(t *testing.T) {
	vm := newTestVM(t, 4, nil)
	// Custom permutation: reversal within the partition.
	vm2 := newTestVM(t, 4, nil)
	if err := vm2.EstablishPermutation([]int{3, 2, 1, 0}); err != nil {
		t.Fatal(err)
	}
	prog := m68k.MustAssemble(`
		movea.l #$F10000, a0
		move.w  $100, d0
		move.b  d0, (a0)
		move.b  2(a0), d1
		move.w  d1, $102
		halt
	`)
	for i, pe := range vm2.PEs {
		pe.Mem.WriteWords(0x100, []uint16{uint16(60 + i)})
	}
	if _, err := vm2.RunMIMD(prog); err != nil {
		t.Fatal(err)
	}
	for i, pe := range vm2.PEs {
		v, _ := pe.Mem.Read(0x102, m68k.Word)
		if v != uint32(60+(3-i)) {
			t.Errorf("PE %d received %d, want %d", i, v, 60+(3-i))
		}
	}
	if vm2.NetTransfers() != 4 || vm2.BarrierRounds() != 0 || vm2.NetReconfigs() != 0 {
		t.Errorf("accessors: %d %d %d", vm2.NetTransfers(), vm2.BarrierRounds(), vm2.NetReconfigs())
	}
	_ = vm
}
