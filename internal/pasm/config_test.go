package pasm

import (
	"testing"

	"repro/internal/m68k"
)

func TestConfigValidateBranches(t *testing.T) {
	base := DefaultConfig()
	muts := []func(*Config){
		func(c *Config) { c.NumPEs = 3 },
		func(c *Config) { c.PEsPerMC = 5 },
		func(c *Config) { c.QueueDepthWords = 1 },
		func(c *Config) { c.QueueWordCycles = 0 },
		func(c *Config) { c.PEMemBytes = 16 },
		func(c *Config) { c.ClockHz = 0 },
		func(c *Config) { c.MaxSteps = 0 },
	}
	for i, mut := range muts {
		cfg := base
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if err := base.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestVMAccessorsAndPermutation(t *testing.T) {
	vm := newTestVM(t, 4, nil)
	// Custom permutation: reversal within the partition.
	vm2 := newTestVM(t, 4, nil)
	if err := vm2.EstablishPermutation([]int{3, 2, 1, 0}); err != nil {
		t.Fatal(err)
	}
	prog := m68k.MustAssemble(`
		movea.l #$F10000, a0
		move.w  $100, d0
		move.b  d0, (a0)
		move.b  2(a0), d1
		move.w  d1, $102
		halt
	`)
	for i, pe := range vm2.PEs {
		pe.Mem.WriteWords(0x100, []uint16{uint16(60 + i)})
	}
	if _, err := vm2.RunMIMD(prog); err != nil {
		t.Fatal(err)
	}
	for i, pe := range vm2.PEs {
		v, _ := pe.Mem.Read(0x102, m68k.Word)
		if v != uint32(60+(3-i)) {
			t.Errorf("PE %d received %d, want %d", i, v, 60+(3-i))
		}
	}
	if vm2.NetTransfers() != 4 || vm2.BarrierRounds() != 0 || vm2.NetReconfigs() != 0 {
		t.Errorf("accessors: %d %d %d", vm2.NetTransfers(), vm2.BarrierRounds(), vm2.NetReconfigs())
	}
	_ = vm
}
