package pasm

import (
	"testing"

	"repro/internal/m68k"
)

// TestSIMDMasking exercises the Fetch Unit mask register: the MC
// disables a subset of its PEs, broadcasts, and re-enables them.
// Disabled PEs must not execute the masked instructions ("Disabled PEs
// do not participate in the instruction and wait until an instruction
// is broadcast for which they are enabled", paper Section 3) and must
// not participate in instruction release.
func TestSIMDMasking(t *testing.T) {
	vm := newTestVM(t, 4, nil)
	prog := m68k.MustAssemble(`
		bcast   init
		setmask #5            ; enable PEs 0 and 2 only
		moveq   #9, d0
l:	bcast   addone
	dbra    d0, l
		setmask #15           ; everyone back
		bcast   store
		halt
		.block  init
		clr.w   d0
		.endblock
		.block  addone
		addq.w  #1, d0
		.endblock
		.block  store
		move.w  d0, $100
		.endblock
	`)
	res, err := vm.RunSIMD(prog)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint32{10, 0, 10, 0}
	for i, pe := range vm.PEs {
		v, _ := pe.Mem.Read(0x100, m68k.Word)
		if v != want[i] {
			t.Errorf("PE %d: d0 = %d, want %d", i, v, want[i])
		}
	}
	// Disabled PEs idle during the masked section: their clocks lag at
	// the store release, then all converge at the final instruction.
	if res.PEClocks[0] != res.PEClocks[1] {
		t.Errorf("final clocks diverge: %v", res.PEClocks)
	}
}

// TestSIMDMaskFromRegister covers the register form of SETMASK.
func TestSIMDMaskFromRegister(t *testing.T) {
	vm := newTestVM(t, 2, nil)
	prog := m68k.MustAssemble(`
		moveq   #1, d1        ; MC register: enable PE 0 only
		setmask d1
		bcast   mark
		setmask #3
		halt
		.block  mark
		move.w  $100, d0
		addq.w  #7, d0
		move.w  d0, $100
		.endblock
	`)
	for _, pe := range vm.PEs {
		pe.Mem.WriteWords(0x100, []uint16{100})
	}
	if _, err := vm.RunSIMD(prog); err != nil {
		t.Fatal(err)
	}
	v0, _ := vm.PEs[0].Mem.Read(0x100, m68k.Word)
	v1, _ := vm.PEs[1].Mem.Read(0x100, m68k.Word)
	if v0 != 107 || v1 != 100 {
		t.Errorf("got %d, %d; want 107, 100", v0, v1)
	}
}

// TestMaskedReleaseDoesNotWaitForDisabledPEs checks the timing
// property: a long-running disabled PE must not delay release of
// instructions it does not participate in... which cannot happen in
// pure SIMD (the disabled PE is idle), so the test verifies the dual:
// a disabled PE's clock does not advance while it is masked out.
func TestMaskedPEClockFrozen(t *testing.T) {
	vm := newTestVM(t, 2, nil)
	prog := m68k.MustAssemble(`
		setmask #1
		moveq   #99, d0
l:	bcast   work
	dbra    d0, l
		halt
		.block  work
		mulu.w  d1, d2
		.endblock
	`)
	res, err := vm.RunSIMD(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.PEClocks[1] != 0 {
		t.Errorf("disabled PE clock = %d, want 0", res.PEClocks[1])
	}
	if res.PEClocks[0] == 0 {
		t.Error("enabled PE did no work")
	}
}

// TestSETMASKRejectedOnPE: the mask register belongs to the MC; a PE
// executing SETMASK in MIMD mode is a program error.
func TestSETMASKRejectedOnPE(t *testing.T) {
	vm := newTestVM(t, 2, nil)
	prog := m68k.MustAssemble("setmask #3\n halt")
	if _, err := vm.RunMIMD(prog); err == nil {
		t.Error("SETMASK on a PE accepted in MIMD mode")
	}
}

// TestSETMASKNotBroadcastable: SETMASK inside a broadcast block is
// rejected by the SIMD executor.
func TestSETMASKNotBroadcastable(t *testing.T) {
	vm := newTestVM(t, 2, nil)
	prog := m68k.MustAssemble(`
		bcast   bad
		halt
		.block  bad
		setmask #1
		.endblock
	`)
	if _, err := vm.RunSIMD(prog); err == nil {
		t.Error("SETMASK inside a block accepted")
	}
}
