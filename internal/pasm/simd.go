package pasm

import (
	"fmt"

	"repro/internal/fetchunit"
	"repro/internal/m68k"
	"repro/internal/obs"
)

// RunSIMD executes an MC program in SIMD mode.
//
// Every MC of the partition runs the same program from its own memory:
// control flow (loops, pointer bookkeeping) executes on the MC CPU,
// and each BCAST instruction hands a block of data-processing
// instructions to the Fetch Unit, whose controller streams it word by
// word into the finite queue. Each PE of the group requests the next
// instruction when it finishes its current one; the Fetch Unit
// releases an instruction only when it is fully enqueued AND every
// enabled PE of the group has requested it — per-instruction lockstep,
// which is exactly the paper's "SIMD mode charges the worst case of
// every instruction" behaviour (T_SIMD = sum of per-instruction
// maxima).
//
// The MC timeline and the PE timelines are tracked independently and
// coupled only through the queue (ready times, controller-busy stalls,
// queue-full back-pressure), so MC control flow overlaps PE
// computation exactly as on the prototype; with the queue non-empty
// the PEs never see control flow at all.
func (vm *VM) RunSIMD(prog *m68k.Program) (RunResult, error) {
	if len(prog.Instrs) == 0 {
		return RunResult{}, fmt.Errorf("pasm: empty program")
	}
	vm.net.reset()
	vm.bar = newBarrier(vm.P)

	type group struct {
		mc     *m68k.CPU
		halted bool
	}
	groups := make([]group, vm.Q)
	for g := range groups {
		vm.MCs[g].Queue.Reset()
		vm.MCs[g].Mask = fetchunit.AllEnabled(len(vm.MCs[g].PEs))
		mc := m68k.NewCPU(prog, vm.MCs[g].Mem)
		mc.FetchFromMem = true
		mc.DisableExecTable = vm.Cfg.DisableExecTable
		mc.DisableSuperinstructions = vm.Cfg.DisableSuperinstructions
		mc.A[7] = vm.MCs[g].Mem.Size() - 4
		if vm.TraceHook != nil {
			vm.TraceHook(fmt.Sprintf("MC%d", g), mc)
		}
		groups[g].mc = mc
	}
	pes := make([]*m68k.CPU, vm.P)
	for i, pe := range vm.PEs {
		cpu := m68k.NewCPU(prog, pe.Mem)
		cpu.FetchFromMem = false // instructions arrive from the queue
		cpu.FixedMulCycles = vm.Cfg.FixedMulCycles
		cpu.DisableExecTable = vm.Cfg.DisableExecTable
		cpu.DisableSuperinstructions = vm.Cfg.DisableSuperinstructions
		pe.dev.bar = vm.bar
		cpu.Dev = pe.dev
		if vm.TraceHook != nil {
			vm.TraceHook(fmt.Sprintf("PE%d", i), cpu)
		}
		pes[i] = cpu
	}
	obsOn := vm.wireObsPEs(pes)
	mcUnits := make([]int, vm.Q)
	for g := range groups {
		mcUnits[g] = vm.wireObsMC(g, groups[g].mc)
	}

	// The batch fast path below replays a fused MULU run through the
	// lockstep queue with O(1) arithmetic per instruction; it engages
	// only when the superinstruction tier is active and nothing is
	// observing individual instructions.
	batchTier := !vm.Cfg.DisableExecTable && !vm.Cfg.DisableSuperinstructions && vm.Obs == nil
	batchCost := make([]int64, vm.P)

	var mcSteps int64
	var mcStall, peStarve int64
	memoH, memoM := vm.MemoHits(), vm.MemoMisses()
	type issue struct {
		blk   m68k.BlockRange
		ready bool
	}
	issues := make([]issue, vm.Q)
	for {
		// Advance every live MC to its next BCAST (or halt).
		for g := range issues {
			issues[g] = issue{}
		}
		anyLive := false
		for g := range groups {
			if groups[g].halted {
				continue
			}
			mc := groups[g].mc
			for {
				st := mc.Step()
				mcSteps++
				if mcSteps > vm.Cfg.MaxSteps {
					return RunResult{}, fmt.Errorf("pasm: MC exceeded %d steps (runaway control program?)", vm.Cfg.MaxSteps)
				}
				switch st {
				case m68k.StatusOK:
					continue
				case m68k.StatusSetMask:
					// The MC wrote the Fetch Unit mask register:
					// subsequent broadcasts reach only the enabled PEs
					// of this group (disabled PEs wait, not
					// participating in instruction release).
					vm.MCs[g].Mask = fetchunit.Mask(mc.LastMask)
					continue
				case m68k.StatusBcast:
					// The Fetch Unit controller must be free before the
					// MC's control-word write completes.
					if free := vm.MCs[g].Queue.CtrlFree(); free > mc.Clock {
						stall := free - mc.Clock
						mc.Clock = free
						mc.Regions[m68k.RegionControl] += stall
						mcStall += stall
					}
					issues[g] = issue{blk: mc.LastBcast, ready: true}
				case m68k.StatusHalted:
					groups[g].halted = true
				case m68k.StatusBlocked:
					return RunResult{}, fmt.Errorf("pasm: MC %d blocked on a device access at pc %d", g, mc.PC)
				default:
					return RunResult{}, fmt.Errorf("pasm: MC %d error: %w", g, mc.Err)
				}
				break
			}
			if issues[g].ready {
				anyLive = true
			}
		}
		if !anyLive {
			break // all MCs halted
		}
		// All groups execute the same program; their BCAST sequences
		// must agree.
		var blk m68k.BlockRange
		first := true
		for g := range groups {
			if !issues[g].ready {
				return RunResult{}, fmt.Errorf("pasm: MC %d halted while others broadcast", g)
			}
			if first {
				blk = issues[g].blk
				first = false
			} else if issues[g].blk != blk {
				return RunResult{}, fmt.Errorf("pasm: MCs diverged: block [%d,%d) vs [%d,%d)",
					blk.Start, blk.End, issues[g].blk.Start, issues[g].blk.End)
			}
		}
		if blk.Len() == 0 {
			return RunResult{}, fmt.Errorf("pasm: empty broadcast block")
		}
		// Stream the block: per instruction, per group: enqueue,
		// release at max(ready, all enabled requests), execute on each
		// enabled PE.
		for idx := blk.Start; idx < blk.End; idx++ {
			if batchTier {
				if run, ok := prog.MuluRunAt(idx); ok {
					n := run.Len
					if idx+n > blk.End {
						n = blk.End - idx
					}
					if n > 1 && peBatchable(pes) && vm.masksAllEnabled() {
						for g := range groups {
							if err := vm.lockstepMuluRun(g, groups[g].mc.Clock, pes, run, n, batchCost, &peStarve); err != nil {
								return RunResult{}, err
							}
						}
						idx += n - 1
						continue
					}
				}
			}
			in := &prog.Instrs[idx]
			if !broadcastable(in) {
				return RunResult{}, fmt.Errorf("pasm: %s at instruction %d is not valid inside a broadcast block", in.Op, idx)
			}
			for g := range groups {
				mcg := vm.MCs[g]
				ready, err := mcg.Queue.Enqueue(groups[g].mc.Clock, int(in.Words))
				if err != nil {
					return RunResult{}, fmt.Errorf("pasm: group %d: %w", g, err)
				}
				var maxReq int64 = -1
				for k, pe := range mcg.PEs {
					if mcg.Mask.Enabled(k) && pes[pe.Index].Clock > maxReq {
						maxReq = pes[pe.Index].Clock
					}
				}
				release := ready
				if maxReq > release {
					release = maxReq
				} else if maxReq >= 0 {
					// PEs requested before the word was in the queue:
					// they starve on the controller/MC.
					peStarve += ready - maxReq
				}
				if err := vm.execLockstep(mcg, pes, in, idx, release); err != nil {
					return RunResult{}, err
				}
				if err := mcg.Queue.Consume(int(in.Words), release); err != nil {
					return RunResult{}, fmt.Errorf("pasm: group %d: %w", g, err)
				}
			}
			if in.Op == m68k.JMP {
				// The asynchronous section runs every PE of the
				// partition; a disabled PE never took the jump and
				// has no valid MIMD program counter.
				for g := range groups {
					if vm.MCs[g].Mask != fetchunit.AllEnabled(len(vm.MCs[g].PEs)) {
						return RunResult{}, fmt.Errorf("pasm: mixed-mode switch with disabled PEs (group %d mask %#x) is not supported", g, vm.MCs[g].Mask)
					}
				}
				// Mixed mode: every PE just took the broadcast jump
				// into its own program. Run the asynchronous section
				// (own-memory fetches, full device semantics) until
				// every PE jumps back into the SIMD space, then
				// continue the lockstep stream — the PEs' park times
				// become their next request times, so the rejoin is
				// the implicit Fetch Unit barrier.
				for _, cpu := range pes {
					cpu.FetchFromMem = true
				}
				vm.emitModeSwitch(pes, true)
				if err := vm.runDES(pes, true); err != nil {
					return RunResult{}, err
				}
				vm.emitModeSwitch(pes, false)
				for _, cpu := range pes {
					cpu.FetchFromMem = false
				}
			}
		}
	}

	res := RunResult{PEClocks: make([]int64, vm.P)}
	var critical *m68k.CPU
	for i, cpu := range pes {
		res.PEClocks[i] = cpu.Clock
		if cpu.Clock > res.Cycles {
			res.Cycles = cpu.Clock
			critical = cpu
		}
		res.Instrs += cpu.InstrCount
	}
	if critical != nil {
		res.Regions = critical.Regions
	}
	for g := range groups {
		res.MCInstrs += groups[g].mc.InstrCount
		if occ := vm.MCs[g].Queue.MaxOccupancy; occ > res.QueueMaxOccupancy {
			res.QueueMaxOccupancy = occ
		}
		res.QueueStallCycles += vm.MCs[g].Queue.StallCycles
	}
	res.MCStallCycles = mcStall
	res.PEStarveCycles = peStarve
	res.MemoHits = vm.MemoHits() - memoH
	res.MemoMisses = vm.MemoMisses() - memoM
	res.BarrierRounds = vm.bar.rounds
	res.NetTransfers = vm.net.transfers
	res.NetReconfigs = vm.net.reconfigs
	if obsOn {
		vm.finishObsPEs(pes)
		for g := range groups {
			vm.Obs.Finish(mcUnits[g], groups[g].mc.Clock, groups[g].mc.InstrCount)
		}
	}
	return res, nil
}

// execLockstep runs one released broadcast instruction on every
// enabled PE of a group, retrying PEs that block on a device until the
// whole group completes (a barrier read inside a broadcast block
// resolves this way; anything else that stays blocked is a program
// structure error).
func (vm *VM) execLockstep(mcg *MC, pes []*m68k.CPU, in *m68k.Instr, idx int, release int64) error {
	var blocked []int
	for k, pe := range mcg.PEs {
		if !mcg.Mask.Enabled(k) {
			continue
		}
		cpu := pes[pe.Index]
		// Lockstep wait: the PE requested at its clock; the release
		// time is charged to the instruction's region.
		if wait := release - cpu.Clock; wait > 0 {
			cpu.Regions[in.Region] += wait
			cpu.Clock = release
			if vm.Obs != nil {
				vm.Obs.Emit(vm.obsPE[pe.Index], obs.Event{
					Kind: obs.KindLockstepWait, Clock: release, Dur: wait,
				})
			}
		}
		switch st := cpu.ExecBroadcastAt(idx); st {
		case m68k.StatusOK, m68k.StatusHalted:
		case m68k.StatusBlocked:
			blocked = append(blocked, pe.Index)
		default:
			return fmt.Errorf("pasm: PE %d error in broadcast: %w", pe.Index, cpu.Err)
		}
	}
	// Retry blocked PEs; each full pass must make progress.
	for pass := 0; len(blocked) > 0; pass++ {
		if pass > vm.P+1 {
			return fmt.Errorf("pasm: PEs %v deadlocked in broadcast instruction %q", blocked, in)
		}
		var still []int
		for _, pi := range blocked {
			switch st := pes[pi].ExecBroadcastAt(idx); st {
			case m68k.StatusOK, m68k.StatusHalted:
			case m68k.StatusBlocked:
				still = append(still, pi)
			default:
				return fmt.Errorf("pasm: PE %d error in broadcast retry: %w", pi, pes[pi].Err)
			}
		}
		if len(still) == len(blocked) {
			return fmt.Errorf("pasm: PEs %v stuck in broadcast instruction %q (no progress)", still, in)
		}
		blocked = still
	}
	return nil
}

// peBatchable reports whether every PE can take the MULU-run batch
// path: live (a PE halted in a mixed-mode section skips broadcast
// instructions, which the batch cannot model) and untraced (the batch
// skips per-instruction trace callbacks).
func peBatchable(pes []*m68k.CPU) bool {
	for _, cpu := range pes {
		if cpu.Halted || cpu.Err != nil || cpu.Trace != nil {
			return false
		}
	}
	return true
}

// masksAllEnabled reports whether every group's Fetch Unit mask
// enables all its PEs (the batch path's lockstep arithmetic assumes
// every PE participates in every release).
func (vm *VM) masksAllEnabled() bool {
	for g := range vm.MCs {
		if vm.MCs[g].Mask != fetchunit.AllEnabled(len(vm.MCs[g].PEs)) {
			return false
		}
	}
	return true
}

// lockstepMuluRun streams a fused run of n identical MULUs through
// group g's Fetch Unit queue with O(1) arithmetic per instruction
// instead of executing each member on each PE.
//
// The equivalence argument: during block streaming the MC clock is
// fixed (the MC has already run ahead to its next BCAST), so every
// Enqueue sees the same issue time as the reference path. Each PE's
// per-member cost (static base + the data-dependent multiply time of
// the invariant source register) is a constant c_p, so after the
// first release every enabled PE requests at release+c_p and the next
// release is max(ready, release+max_p(c_p)) — no per-PE scan needed.
// Enqueue/Consume still run once per member, so all queue state
// (controller-free time, occupancy high-water mark, full-queue
// stalls) evolves identically. Interior flag writes are dead (every
// member overwrites NZVC; X is never touched), so only the final
// product, flags, clocks and region charges are materialized — the
// exact values the reference path leaves behind.
func (vm *VM) lockstepMuluRun(g int, mcClock int64, pes []*m68k.CPU, run m68k.MuluRun, n int, cost []int64, peStarve *int64) error {
	mcg := vm.MCs[g]
	var cmax int64 = -1
	for _, pe := range mcg.PEs {
		cpu := pes[pe.Index]
		mt := cpu.FixedMulCycles
		if mt <= 0 {
			mt = m68k.MuluCycles(uint16(cpu.D[run.Src]))
		}
		c := run.Base + mt
		cost[pe.Index] = c
		if c > cmax {
			cmax = c
		}
	}
	var release int64
	for i := 0; i < n; i++ {
		ready, err := mcg.Queue.Enqueue(mcClock, run.Words)
		if err != nil {
			return fmt.Errorf("pasm: group %d: %w", g, err)
		}
		var maxReq int64 = -1
		if i == 0 {
			for _, pe := range mcg.PEs {
				if clk := pes[pe.Index].Clock; clk > maxReq {
					maxReq = clk
				}
			}
		} else {
			maxReq = release + cmax
		}
		r := ready
		if maxReq > r {
			r = maxReq
		} else if maxReq >= 0 {
			*peStarve += ready - maxReq
		}
		release = r
		if err := mcg.Queue.Consume(run.Words, release); err != nil {
			return fmt.Errorf("pasm: group %d: %w", g, err)
		}
	}
	for _, pe := range mcg.PEs {
		cpu := pes[pe.Index]
		final := release + cost[pe.Index]
		cpu.Regions[run.Region] += final - cpu.Clock
		cpu.Clock = final
		cpu.InstrCount += int64(n)
		cpu.PC += n
		src := cpu.D[run.Src] & 0xFFFF
		d := cpu.D[run.Dst]
		for i := 0; i < n; i++ {
			d = (d & 0xFFFF) * src
		}
		cpu.D[run.Dst] = d
		cpu.N, cpu.Z, cpu.V, cpu.C = d&0x80000000 != 0, d == 0, false, false
	}
	return nil
}

// broadcastable reports whether an operation may appear in a broadcast
// block: PEs have no program counter of their own in SIMD mode, so
// control flow cannot be broadcast.
func broadcastable(in *m68k.Instr) bool {
	switch in.Op {
	case m68k.BCC, m68k.DBCC, m68k.JSR, m68k.RTS,
		m68k.BCAST, m68k.SETMASK, m68k.HALT:
		return false
	case m68k.JMP:
		// A broadcast jump to a PE program label is the SIMD-to-MIMD
		// mode switch (paper Section 3): the PEs leave the lockstep
		// stream and execute asynchronously from their own memories
		// until they jump back into the SIMD space. Other jumps have
		// no meaning in a block.
		return in.Dst.Mode == m68k.ModeLabel
	}
	return true
}
