package pasm

import (
	"strings"
	"testing"

	"repro/internal/m68k"
)

func newTestVM(t *testing.T, p int, mut func(*Config)) *VM {
	t.Helper()
	cfg := DefaultConfig()
	cfg.PEMemBytes = 1 << 16
	if mut != nil {
		mut(&cfg)
	}
	vm, err := NewVM(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.EstablishShift(); err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestNewVMValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := NewVM(cfg, 3); err == nil {
		t.Error("partition size 3 accepted")
	}
	if _, err := NewVM(cfg, 32); err == nil {
		t.Error("partition larger than machine accepted")
	}
	bad := cfg
	bad.QueueDepthWords = 1
	if _, err := NewVM(bad, 4); err == nil {
		t.Error("tiny queue accepted")
	}
	vm, err := NewVM(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if vm.Q != 2 || len(vm.MCs) != 2 || len(vm.MCs[0].PEs) != 4 {
		t.Errorf("partition shape: Q=%d", vm.Q)
	}
}

func TestMIMDIndependentCompute(t *testing.T) {
	vm := newTestVM(t, 4, nil)
	prog := m68k.MustAssemble(`
		move.w  $100, d0
		mulu.w  d0, d0
		move.w  d0, $102
		halt
	`)
	for i, pe := range vm.PEs {
		if err := pe.Mem.WriteWords(0x100, []uint16{uint16(i + 2)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := vm.RunMIMD(prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, pe := range vm.PEs {
		v, _ := pe.Mem.Read(0x102, m68k.Word)
		want := uint32((i + 2) * (i + 2))
		if v != want {
			t.Errorf("PE %d: got %d, want %d", i, v, want)
		}
	}
	if res.Cycles == 0 || res.Instrs != 4*4 {
		t.Errorf("res = %+v", res)
	}
}

const ringMIMD = `
	; each PE sends the low byte of mem[$100] to PE (i-1) mod p with
	; polling, receives from PE (i+1) mod p, stores to mem[$102].
	movea.l #$F10000, a0    ; xmit
	movea.l #$F10002, a1    ; recv
	movea.l #$F10004, a2    ; tx ready
	movea.l #$F10006, a3    ; rx valid
	move.w  $100, d0
txw:	tst.w   (a2)
	beq     txw
	move.b  d0, (a0)
rxw:	tst.w   (a3)
	beq     rxw
	move.b  (a1), d1
	move.w  d1, $102
	halt
`

func TestMIMDNetworkRing(t *testing.T) {
	for _, p := range []int{2, 4, 8, 16} {
		vm := newTestVM(t, p, nil)
		prog := m68k.MustAssemble(ringMIMD)
		for i, pe := range vm.PEs {
			pe.Mem.WriteWords(0x100, []uint16{uint16(10 + i)})
		}
		res, err := vm.RunMIMD(prog)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, pe := range vm.PEs {
			v, _ := pe.Mem.Read(0x102, m68k.Word)
			want := uint32(10 + (i+1)%p)
			if v != want {
				t.Errorf("p=%d PE %d: received %d, want %d", p, i, v, want)
			}
		}
		if res.NetTransfers != int64(p) {
			t.Errorf("p=%d: transfers = %d, want %d", p, res.NetTransfers, p)
		}
	}
}

const ringSMIMD = `
	; S/MIMD: barrier-synchronized transfer, no polling.
	movea.l #$F10000, a0    ; xmit
	movea.l #$F10002, a1    ; recv
	movea.l #$F00000, a4    ; SIMD space: barrier
	move.w  $100, d0
	move.w  (a4), d7        ; barrier: everyone ready to transfer
	move.b  d0, (a0)
	move.w  (a4), d7        ; barrier: all data in flight
	move.b  (a1), d1
	move.w  d1, $102
	halt
`

func TestSMIMDBarrierRing(t *testing.T) {
	for _, p := range []int{2, 4, 16} {
		vm := newTestVM(t, p, nil)
		prog := m68k.MustAssemble(ringSMIMD)
		for i, pe := range vm.PEs {
			pe.Mem.WriteWords(0x100, []uint16{uint16(40 + i)})
		}
		res, err := vm.RunMIMD(prog)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, pe := range vm.PEs {
			v, _ := pe.Mem.Read(0x102, m68k.Word)
			want := uint32(40 + (i+1)%p)
			if v != want {
				t.Errorf("p=%d PE %d: received %d, want %d", p, i, v, want)
			}
		}
		if res.BarrierRounds != 2 {
			t.Errorf("p=%d: barrier rounds = %d, want 2", p, res.BarrierRounds)
		}
	}
}

func TestBarrierEqualizesSkew(t *testing.T) {
	// PEs do different amounts of work, then meet at a barrier; every
	// PE's completion must be at least the slowest PE's pre-barrier
	// time.
	vm := newTestVM(t, 4, nil)
	prog := m68k.MustAssemble(`
		movea.l #$F00000, a4
		move.w  $100, d0       ; per-PE loop count
spin:	dbra    d0, spin
		move.w  (a4), d7       ; barrier
		halt
	`)
	counts := []uint16{10, 5000, 100, 900}
	for i, pe := range vm.PEs {
		pe.Mem.WriteWords(0x100, []uint16{counts[i]})
	}
	res, err := vm.RunMIMD(prog)
	if err != nil {
		t.Fatal(err)
	}
	slowest := res.PEClocks[1] // count 5000
	for i, c := range res.PEClocks {
		if c < slowest-100 {
			t.Errorf("PE %d finished at %d, before the slowest PE's barrier arrival %d", i, c, slowest)
		}
	}
	if res.BarrierRounds != 1 {
		t.Errorf("rounds = %d", res.BarrierRounds)
	}
}

const simdSum = `
	; MC program: 10 iterations of a broadcast add, then store.
	moveq   #9, d3
	bcast   init
mcloop:	bcast   body
	dbra    d3, mcloop
	bcast   fini
	halt
	.block  init
	clr.w   d0
	move.w  $100, d1
	.endblock
	.block  body
	add.w   d1, d0
	.endblock
	.block  fini
	move.w  d0, $200
	.endblock
`

func TestSIMDBroadcastLoop(t *testing.T) {
	for _, p := range []int{4, 8, 16} {
		vm := newTestVM(t, p, nil)
		prog := m68k.MustAssemble(simdSum)
		for i, pe := range vm.PEs {
			pe.Mem.WriteWords(0x100, []uint16{uint16(i + 1)})
		}
		res, err := vm.RunSIMD(prog)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		for i, pe := range vm.PEs {
			v, _ := pe.Mem.Read(0x200, m68k.Word)
			if v != uint32(10*(i+1)) {
				t.Errorf("p=%d PE %d: sum = %d, want %d", p, i, v, 10*(i+1))
			}
		}
		if res.MCInstrs == 0 || res.QueueMaxOccupancy == 0 {
			t.Errorf("p=%d: MC activity missing: %+v", p, res)
		}
	}
}

func TestSIMDLockstepChargesWorstCase(t *testing.T) {
	// Two PEs multiply by operands with very different bit counts; in
	// lockstep both PEs must finish every instruction together, so the
	// clocks are identical and reflect the slow operand.
	vm := newTestVM(t, 2, nil)
	prog := m68k.MustAssemble(`
		bcast   work
		halt
		.block  work
		move.w  $100, d1
		mulu.w  d1, d0
		mulu.w  d1, d0
		mulu.w  d1, d0
		move.w  d0, $200
		.endblock
	`)
	vm.PEs[0].Mem.WriteWords(0x100, []uint16{0x0000}) // 38-cycle multiplies
	vm.PEs[1].Mem.WriteWords(0x100, []uint16{0xFFFF}) // 70-cycle multiplies
	res, err := vm.RunSIMD(prog)
	if err != nil {
		t.Fatal(err)
	}
	if res.PEClocks[0] != res.PEClocks[1] {
		t.Errorf("lockstep clocks differ: %v", res.PEClocks)
	}

	// The same program on one PE with the fast operand must be faster
	// than the lockstep pair (which pays the 0xFFFF multiplies).
	solo := newTestVM(t, 1, nil)
	solo.PEs[0].Mem.WriteWords(0x100, []uint16{0x0000})
	fast, err := solo.RunSIMD(m68k.MustAssemble(`
		bcast   work
		halt
		.block  work
		move.w  $100, d1
		mulu.w  d1, d0
		mulu.w  d1, d0
		mulu.w  d1, d0
		move.w  d0, $200
		.endblock
	`))
	if err != nil {
		t.Fatal(err)
	}
	if fast.Cycles >= res.Cycles {
		t.Errorf("worst-case charging missing: solo %d !< lockstep %d", fast.Cycles, res.Cycles)
	}
}

func TestMIMDDecouplesInstructionTimes(t *testing.T) {
	// The paper's central effect: in MIMD each PE pays its own
	// multiply times and the maximum is taken once over the whole
	// program, so mixed-operand multiplies finish sooner than in
	// lockstep SIMD, where every instruction costs the maximum.
	simdProg := `
		moveq   #99, d3
		bcast   init
l:	bcast   body
	dbra    d3, l
	halt
	.block  init
	move.w  $100, d1
	move.w  $102, d2
	.endblock
	.block  body
	mulu.w  d1, d0
	mulu.w  d2, d0
	.endblock
	`
	mimdProg := `
	move.w  $100, d1
	move.w  $102, d2
	moveq   #99, d3
l:	mulu.w  d1, d0
	mulu.w  d2, d0
	dbra    d3, l
	halt
	`
	// PE0 has slow first operand and fast second; PE1 the reverse. In
	// SIMD every instruction costs 70 cycles of multiply time; in MIMD
	// each PE pays 70+38 per iteration.
	load := func(vm *VM) {
		vm.PEs[0].Mem.WriteWords(0x100, []uint16{0xFFFF, 0x0000})
		vm.PEs[1].Mem.WriteWords(0x100, []uint16{0x0000, 0xFFFF})
	}
	vm := newTestVM(t, 2, nil)
	load(vm)
	simd, err := vm.RunSIMD(m68k.MustAssemble(simdProg))
	if err != nil {
		t.Fatal(err)
	}
	vm2 := newTestVM(t, 2, nil)
	load(vm2)
	mimd, err := vm2.RunMIMD(m68k.MustAssemble(mimdProg))
	if err != nil {
		t.Fatal(err)
	}
	// SIMD multiply cost per iteration: 2 * 70; MIMD: 70 + 38. Over
	// 100 iterations SIMD pays about 3200 extra multiply cycles, which
	// must dominate the DBRA-overlap advantage SIMD gets.
	if mimd.Cycles >= simd.Cycles {
		t.Errorf("decoupling benefit missing: MIMD %d !< SIMD %d", mimd.Cycles, simd.Cycles)
	}
}

func TestSIMDControlFlowOverlap(t *testing.T) {
	// With equal per-PE work, SIMD must beat MIMD because the MC
	// executes the loop control in parallel and the queue fetch has no
	// wait states.
	simdProg := `
		moveq   #99, d3
l:	bcast   body
	dbra    d3, l
	halt
	.block  body
	add.w   d1, d0
	add.w   d1, d0
	add.w   d1, d0
	.endblock
	`
	mimdProg := `
	moveq   #99, d3
l:	add.w   d1, d0
	add.w   d1, d0
	add.w   d1, d0
	dbra    d3, l
	halt
	`
	vm := newTestVM(t, 4, nil)
	simd, err := vm.RunSIMD(m68k.MustAssemble(simdProg))
	if err != nil {
		t.Fatal(err)
	}
	vm2 := newTestVM(t, 4, nil)
	mimd, err := vm2.RunMIMD(m68k.MustAssemble(mimdProg))
	if err != nil {
		t.Fatal(err)
	}
	if simd.Cycles >= mimd.Cycles {
		t.Errorf("control-flow overlap missing: SIMD %d !< MIMD %d", simd.Cycles, mimd.Cycles)
	}
}

func TestSIMDSmallQueueBackpressure(t *testing.T) {
	// A tiny queue must still produce correct results, just slower,
	// and never exceed its capacity.
	run := func(depth int) (RunResult, *VM) {
		vm := newTestVM(t, 4, func(c *Config) { c.QueueDepthWords = depth })
		prog := m68k.MustAssemble(simdSum)
		for i, pe := range vm.PEs {
			pe.Mem.WriteWords(0x100, []uint16{uint16(i + 1)})
		}
		res, err := vm.RunSIMD(prog)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		return res, vm
	}
	small, vmS := run(4)
	big, _ := run(1024)
	for i, pe := range vmS.PEs {
		v, _ := pe.Mem.Read(0x200, m68k.Word)
		if v != uint32(10*(i+1)) {
			t.Errorf("small queue: PE %d sum = %d", i, v)
		}
	}
	if small.QueueMaxOccupancy > 4 {
		t.Errorf("occupancy %d exceeds depth 4", small.QueueMaxOccupancy)
	}
	if small.Cycles < big.Cycles {
		t.Errorf("small queue faster than big queue: %d < %d", small.Cycles, big.Cycles)
	}
}

func TestSIMDNetworkTransfer(t *testing.T) {
	// Lockstep network transfer: alternating send/recv, no polling,
	// implicit synchronization.
	vm := newTestVM(t, 4, nil)
	prog := m68k.MustAssemble(`
		bcast   xfer
		halt
		.block  xfer
		movea.l #$F10000, a0
		movea.l #$F10002, a1
		move.w  $100, d0
		move.b  d0, (a0)
		move.b  (a1), d1
		move.w  d1, $102
		.endblock
	`)
	for i, pe := range vm.PEs {
		pe.Mem.WriteWords(0x100, []uint16{uint16(70 + i)})
	}
	res, err := vm.RunSIMD(prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, pe := range vm.PEs {
		v, _ := pe.Mem.Read(0x102, m68k.Word)
		want := uint32(70 + (i+1)%4)
		if v != want {
			t.Errorf("PE %d received %d, want %d", i, v, want)
		}
	}
	if res.NetTransfers != 4 {
		t.Errorf("transfers = %d", res.NetTransfers)
	}
}

func TestMIMDDeadlockDetected(t *testing.T) {
	// Everyone receives, nobody sends.
	vm := newTestVM(t, 2, nil)
	prog := m68k.MustAssemble(`
		movea.l #$F10002, a1
		move.b  (a1), d0
		halt
	`)
	_, err := vm.RunMIMD(prog)
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("err = %v, want deadlock", err)
	}
}

func TestMIMDProgramErrorPropagates(t *testing.T) {
	vm := newTestVM(t, 2, nil)
	prog := m68k.MustAssemble(`
		moveq   #0, d1
		divu.w  d1, d0
		halt
	`)
	if _, err := vm.RunMIMD(prog); err == nil {
		t.Error("divide-by-zero not reported")
	}
}

func TestSIMDRejectsControlFlowInBlock(t *testing.T) {
	vm := newTestVM(t, 2, nil)
	prog := m68k.MustAssemble(`
		bcast   bad
		halt
		.block  bad
x:	add.w   d0, d1
	bra     x
	.endblock
	`)
	if _, err := vm.RunSIMD(prog); err == nil {
		t.Error("branch inside broadcast block accepted")
	}
}

func TestRegionsCoverClock(t *testing.T) {
	vm := newTestVM(t, 4, nil)
	prog := m68k.MustAssemble(ringSMIMD)
	for i, pe := range vm.PEs {
		pe.Mem.WriteWords(0x100, []uint16{uint16(i)})
	}
	res, err := vm.RunMIMD(prog)
	if err != nil {
		t.Fatal(err)
	}
	var sum int64
	for _, v := range res.Regions {
		sum += v
	}
	if sum != res.Cycles {
		t.Errorf("region sum %d != critical clock %d", sum, res.Cycles)
	}
}

func TestRunResultSeconds(t *testing.T) {
	cfg := DefaultConfig()
	r := RunResult{Cycles: 8_000_000}
	if s := r.Seconds(cfg); s != 1.0 {
		t.Errorf("Seconds = %v, want 1.0", s)
	}
}
