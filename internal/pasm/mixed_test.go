package pasm

import (
	"testing"

	"repro/internal/m68k"
)

// mixedProg runs `bursts` SIMD-dispatched MIMD sections; each burst
// multiplies by the PE's own multiplier (data-dependent time) and
// counts in d0.
const mixedProg = `
	bcast   init
	moveq   #4, d3
l:	bcast   burst
	dbra    d3, l
	bcast   fini
	halt
	.block  init
	clr.w   d0
	move.w  $100, d1      ; per-PE multiplier
	move.w  #7, d2
	.endblock
	.block  burst
	jmp     mimd          ; SIMD -> MIMD mode switch (broadcast jump)
	.endblock
	.block  fini
	move.w  d0, $200
	.endblock
	; --- asynchronous section, fetched from PE memory ---
mimd:	mulu.w  d1, d2        ; own data-dependent time
	addq.w  #1, d0
	jmp     $F00000       ; MIMD -> SIMD mode switch (rejoin)
`

func TestMixedModeBasic(t *testing.T) {
	// Refresh off: per-PE refresh phase differs with asymmetric data
	// and would blur the exact clock-equality assertion.
	vm := newTestVM(t, 4, func(c *Config) { c.RefreshPeriod = 0 })
	prog := m68k.MustAssemble(mixedProg)
	mults := []uint16{0x0000, 0xFFFF, 0x0F0F, 0x8001}
	for i, pe := range vm.PEs {
		pe.Mem.WriteWords(0x100, []uint16{mults[i]})
	}
	res, err := vm.RunSIMD(prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, pe := range vm.PEs {
		v, _ := pe.Mem.Read(0x200, m68k.Word)
		if v != 5 {
			t.Errorf("PE %d: burst count %d, want 5", i, v)
		}
	}
	// The final store re-synchronizes all PEs.
	for i, c := range res.PEClocks {
		if c != res.PEClocks[0] {
			t.Errorf("PE %d clock %d != PE 0 clock %d", i, c, res.PEClocks[0])
		}
	}
}

func TestMixedModeRejoinIsBarrier(t *testing.T) {
	// The slow-multiplier PE dominates every burst: total time must
	// reflect 5 bursts of the 0xFFFF multiply (70 cycles each), not
	// the fast PE's 38.
	run := func(mults []uint16) int64 {
		vm := newTestVM(t, 2, func(c *Config) { c.RefreshPeriod = 0 })
		for i, pe := range vm.PEs {
			pe.Mem.WriteWords(0x100, []uint16{mults[i]})
		}
		res, err := vm.RunSIMD(m68k.MustAssemble(mixedProg))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	bothFast := run([]uint16{0, 0})
	mixed := run([]uint16{0, 0xFFFF})
	bothSlow := run([]uint16{0xFFFF, 0xFFFF})
	if mixed != bothSlow {
		t.Errorf("one slow PE (%d) should cost the same as two (%d): rejoin is a barrier", mixed, bothSlow)
	}
	// 5 bursts x 32 extra cycles for the slow multiply.
	if bothSlow-bothFast != 5*32 {
		t.Errorf("slow-fast delta = %d, want 160", bothSlow-bothFast)
	}
}

func TestMixedModeSectionUsesDRAMFetch(t *testing.T) {
	// The MIMD section fetches from PE memory: with extra DRAM wait
	// states the mixed program slows, while a pure-SIMD version of the
	// same work does not (its data accesses aside).
	mk := func(ws int64) int64 {
		vm := newTestVM(t, 2, func(c *Config) { c.DRAMWaitStates = ws; c.RefreshPeriod = 0 })
		for _, pe := range vm.PEs {
			pe.Mem.WriteWords(0x100, []uint16{7})
		}
		res, err := vm.RunSIMD(m68k.MustAssemble(mixedProg))
		if err != nil {
			t.Fatal(err)
		}
		return res.Cycles
	}
	if mk(4) <= mk(0) {
		t.Error("MIMD-section fetches not charged to DRAM")
	}
}

func TestMixedModeNetworkInSection(t *testing.T) {
	// The asynchronous section may use the network with polling, like
	// any MIMD program: a ring exchange inside a burst.
	vm := newTestVM(t, 4, nil)
	prog := m68k.MustAssemble(`
	bcast   init
	bcast   burst
	bcast   fini
	halt
	.block  init
	movea.l #$F10000, a5
	move.w  $100, d0
	.endblock
	.block  burst
	jmp     ring
	.endblock
	.block  fini
	move.w  d1, $102
	.endblock
ring:
t1:	tst.w   4(a5)
	beq     t1
	move.b  d0, (a5)
r1:	tst.w   6(a5)
	beq     r1
	move.b  2(a5), d1
	jmp     $F00000
`)
	for i, pe := range vm.PEs {
		pe.Mem.WriteWords(0x100, []uint16{uint16(30 + i)})
	}
	if _, err := vm.RunSIMD(prog); err != nil {
		t.Fatal(err)
	}
	for i, pe := range vm.PEs {
		v, _ := pe.Mem.Read(0x102, m68k.Word)
		if want := uint32(30 + (i+1)%4); v != want {
			t.Errorf("PE %d received %d, want %d", i, v, want)
		}
	}
}

func TestJumpToSIMDSpaceOutsideMixedModeRejected(t *testing.T) {
	vm := newTestVM(t, 2, nil)
	prog := m68k.MustAssemble("jmp $F00000\n halt")
	if _, err := vm.RunMIMD(prog); err == nil {
		t.Error("SIMD-space jump accepted in pure MIMD mode")
	}
}

func TestBranchStillRejectedInBlocks(t *testing.T) {
	vm := newTestVM(t, 2, nil)
	prog := m68k.MustAssemble(`
	bcast   bad
	halt
	.block  bad
x:	bra     x
	.endblock
	`)
	if _, err := vm.RunSIMD(prog); err == nil {
		t.Error("branch inside block accepted")
	}
}

func TestMixedModeWithMaskRejected(t *testing.T) {
	vm := newTestVM(t, 4, nil)
	prog := m68k.MustAssemble(`
	setmask #5
	bcast   burst
	halt
	.block  burst
	jmp     m
	.endblock
m:	nop
	jmp     $F00000
`)
	if _, err := vm.RunSIMD(prog); err == nil {
		t.Error("mode switch with disabled PEs accepted")
	}
}
