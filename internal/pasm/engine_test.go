package pasm

import (
	"testing"
	"testing/quick"

	"repro/internal/m68k"
	"repro/internal/prng"
)

// TestMIMDNoDeviceOpsMatchesSoloTiming: a program that never touches a
// device must time identically under the DES engine and under a bare
// CPU run — the engine adds no phantom cycles.
func TestMIMDNoDeviceOpsMatchesSoloTiming(t *testing.T) {
	src := `
	moveq   #99, d1
l:	mulu.w  d1, d0
	add.w   d1, $2000
	dbra    d1, l
	halt
	`
	vm := newTestVM(t, 4, nil)
	res, err := vm.RunMIMD(m68k.MustAssemble(src))
	if err != nil {
		t.Fatal(err)
	}

	solo := m68k.NewCPU(m68k.MustAssemble(src), m68k.NewMemory(1<<16))
	solo.Mem.WaitStates = vm.Cfg.DRAMWaitStates
	solo.Mem.RefreshPeriod = vm.Cfg.RefreshPeriod
	solo.Mem.RefreshStall = vm.Cfg.RefreshStall
	solo.FetchFromMem = true
	solo.A[7] = 1<<16 - 4
	if st := solo.Run(1 << 20); st != m68k.StatusHalted {
		t.Fatalf("solo status %v", st)
	}
	for i, c := range res.PEClocks {
		if c != solo.Clock {
			t.Errorf("PE %d clock %d != solo %d", i, c, solo.Clock)
		}
	}
}

// TestMIMDDeterministicUnderLoad: a randomized ring workload (every PE
// forwards random bytes around the ring with barriers interleaved)
// must be cycle-identical across repeated runs of the DES engine.
func TestMIMDDeterministicUnderLoad(t *testing.T) {
	const p = 8
	prog := m68k.MustAssemble(`
	movea.l	#$F10000, a0
	movea.l	#$F00000, a4
	move.w	$100, d4	; per-PE iteration skew
	move.w	#29, d5		; 30 rounds
round:	move.w	d4, d0
spin:	dbra	d0, spin
	move.w	(a4), d7	; barrier
	move.b	d5, (a0)	; send round number
	move.w	(a4), d7	; barrier
	move.b	2(a0), d1	; receive
	add.w	d1, d6
	dbra	d5, round
	move.w	d6, $102
	halt
	`)
	run := func() ([]int64, []uint32) {
		vm := newTestVM(t, p, nil)
		g := prng.New(42)
		for _, pe := range vm.PEs {
			pe.Mem.WriteWords(0x100, []uint16{uint16(g.Intn(500))})
		}
		res, err := vm.RunMIMD(prog)
		if err != nil {
			t.Fatal(err)
		}
		sums := make([]uint32, p)
		for i, pe := range vm.PEs {
			v, _ := pe.Mem.Read(0x102, m68k.Word)
			sums[i] = v
		}
		return res.PEClocks, sums
	}
	c1, s1 := run()
	c2, s2 := run()
	for i := range c1 {
		if c1[i] != c2[i] || s1[i] != s2[i] {
			t.Fatalf("run diverged at PE %d: clocks %d/%d sums %d/%d", i, c1[i], c2[i], s1[i], s2[i])
		}
	}
	// Every PE received each round number once: sum = 30*29/2... the
	// round counter runs 29..0, so sum = 435.
	for i, s := range s1 {
		if s != 435 {
			t.Errorf("PE %d: ring sum %d, want 435", i, s)
		}
	}
}

// TestRuntimeReconfigurationRing: PEs repeatedly retarget their
// circuits at run time (shift by 1, then by 2) and exchange data; the
// engine must serialize establishment conflicts correctly.
func TestRuntimeReconfigurationRing(t *testing.T) {
	const p = 4
	prog := m68k.MustAssemble(`
	movea.l	#$F10000, a0
	; circuit to (me+1) mod p, exchange, then to (me+2) mod p, exchange
	move.w	$100, d0	; dest 1
	move.w	d0, 8(a0)
	move.w	$104, d2	; my value
	move.b	d2, (a0)
	move.b	2(a0), d3	; from (me-1)
	move.w	d3, $106
	move.w	#$FFFF, 8(a0)	; release
	move.w	$102, d0	; dest 2
	move.w	d0, 8(a0)
	move.b	d2, (a0)
	move.b	2(a0), d3	; from (me-2)
	move.w	d3, $108
	halt
	`)
	vm := newTestVM(t, p, nil)
	for i, pe := range vm.PEs {
		pe.Mem.WriteWords(0x100, []uint16{
			uint16((i + 1) % p), uint16((i + 2) % p), uint16(50 + i),
		})
	}
	res, err := vm.RunMIMD(prog)
	if err != nil {
		t.Fatal(err)
	}
	for i, pe := range vm.PEs {
		v1, _ := pe.Mem.Read(0x106, m68k.Word)
		v2, _ := pe.Mem.Read(0x108, m68k.Word)
		if v1 != uint32(50+(i-1+p)%p) {
			t.Errorf("PE %d: shift-1 received %d, want %d", i, v1, 50+(i-1+p)%p)
		}
		if v2 != uint32(50+(i-2+p)%p) {
			t.Errorf("PE %d: shift-2 received %d, want %d", i, v2, 50+(i-2+p)%p)
		}
	}
	if res.NetReconfigs != 2*p {
		t.Errorf("reconfigs = %d, want %d", res.NetReconfigs, 2*p)
	}
}

// Property: random compute-only programs time deterministically and
// region accounting always covers the clock on every PE.
func TestEngineAccountingProperty(t *testing.T) {
	f := func(seed uint32) bool {
		g := prng.New(seed)
		// Build a small random straight-line compute program.
		src := "\tmoveq\t#" + string(rune('0'+g.Intn(10))) + ", d1\n"
		for i := 0; i < 5+g.Intn(10); i++ {
			switch g.Intn(4) {
			case 0:
				src += "\tmulu.w\td1, d2\n"
			case 1:
				src += "\tadd.w\td1, d3\n"
			case 2:
				src += "\tlsl.w\t#2, d3\n"
			default:
				src += "\tmove.w\td3, $2000\n"
			}
		}
		src += "\thalt\n"
		prog, err := m68k.Assemble(src)
		if err != nil {
			return false
		}
		cfg := DefaultConfig()
		cfg.PEMemBytes = 1 << 16
		vm, err := NewVM(cfg, 2)
		if err != nil {
			return false
		}
		if err := vm.EstablishShift(); err != nil {
			return false
		}
		res, err := vm.RunMIMD(prog)
		if err != nil {
			return false
		}
		var sum int64
		for _, v := range res.Regions {
			sum += v
		}
		return sum == res.Cycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
