package pasm

// Segment memoization: the MIMD/S-MIMD engine's computation segments —
// the instruction runs between two device operations — are pure
// functions of (program counter, registers, condition codes, DRAM
// refresh phase, and the memory words they read). The engine executes
// polling loops, barrier spins and other small segments thousands of
// times from identical states; this cache replays their recorded
// effects (register/flag results, cycle and region deltas, memory
// writes, and — under observability — the per-instruction event
// stream) instead of re-interpreting them.
//
// Correctness rests on three mechanisms:
//
//   - The key covers every input except memory: PC, a digest of the
//     register file and condition codes, and the clamped refresh phase
//     (Memory.Penalty depends on the absolute clock only through the
//     phase; all non-positive phases collide on the next access and are
//     equivalent). Ready entries additionally store the full start
//     state, so a digest collision can never replay a wrong effect.
//   - Memory is handled by read-set verification, which doubles as the
//     invalidation mechanism: recording captures every read of a
//     location the segment has not itself written (a true pre-state
//     dependency), and a hit replays only after every such read still
//     returns the recorded value. A location overwritten since — by a
//     network delivery or another segment of the same PE — simply fails
//     verification and the segment re-executes.
//   - Effects are clock-relative. Cycle, region and instruction deltas
//     are added to the live counters; the refresh phase is restored
//     relative to the new end clock; captured observability events are
//     re-emitted with the start clock added back. Given an identical
//     start state (verified, not assumed) the interpreter is
//     deterministic, so the replayed timeline is the one re-execution
//     would have produced — the three-way differential tests assert
//     byte-identical reports, obs streams and metrics with the cache on
//     and off.
//
// Segments whose recording exceeds the read/write/event caps (large
// compute segments, which rarely repeat from identical states — their
// pointers advance) are marked dead and never considered again, so the
// steady-state cost of a miss is one map probe and one digest.
// Recording itself is sampled: a key must be seen once before its next
// occurrence is recorded, keeping one-shot segments at zero overhead
// beyond the probe.
//
// The cache is per-PE (PEs share no memory, and the discrete-event
// engine advances segments on parallel host workers — per-PE maps keep
// recording lock-free) and persists across runs of the same program on
// one VM, so a service replaying an experiment warms up across
// requests. Config.DisableSegmentMemo turns the layer off; results are
// identical either way.

import (
	"sync/atomic"

	"repro/internal/m68k"
	"repro/internal/obs"
)

// Recording caps: a segment that touches more state than this is not
// worth caching (verification would rival re-execution) and is marked
// dead.
const (
	memoMaxReads  = 256
	memoMaxWrites = 256
	memoMaxEvents = 512
)

// memoMaxEntries bounds each PE's cache. Compute-heavy phases generate
// a fresh start state per segment (their pointers advance), which
// would otherwise grow the map without limit; once full, only existing
// keys stay live — the small repeating segments the cache is for are
// seen long before the bound.
const memoMaxEntries = 1 << 14

// memoMaxSegInstrs gates PCs out of the cache: a segment longer than
// this cannot repeat often enough to pay for its probes (and its state
// rarely recurs — compute segments advance their pointers), so after
// one long segment the PC's future segments skip the cache entirely,
// keeping the steady-state cost of the layer one counter test per
// segment.
const memoMaxSegInstrs = 128

// memoGateProbes gates PCs adaptively: a PC whose segments probed the
// cache this many times without one replay is not repeating from
// identical states (e.g. a poll loop whose idle registers carry
// advancing pointers), so its future segments skip the cache. A hit
// resets the PC's count. The bound is generous because a genuinely
// repeating segment needs two sightings per refresh-phase variant
// before its first hit.
const memoGateProbes = 2048

// memoSliceSteps is the engine's segment step-budget slice: CPU.Run is
// called in slices of this many steps, and the global MaxSteps guard
// is charged per slice. A replayed segment charges the slices its
// recording consumed, keeping budget accounting identical.
const memoSliceSteps = 1 << 16

// memAccess is one recorded data access.
type memAccess struct {
	addr uint32
	val  uint32
	sz   m68k.Size
}

// segKey identifies a segment start state (the full state is compared
// on lookup; the digest only makes the map probe cheap).
type segKey struct {
	pc     int32
	phase  int64 // clamped refresh phase; 0 when refresh is off
	digest uint64
}

type segState uint8

const (
	segSeen  segState = iota // executed once; record the next occurrence
	segReady                 // effect captured; replay verified hits
	segDead                  // overran a cap or ended abnormally
)

// segEntry is one memoized segment: the guard (full start state) and
// the recorded effect.
type segEntry struct {
	state segState

	// Guard: the exact start state the effect was recorded from.
	d          [8]uint32
	a          [8]uint32
	x, n, z, v bool
	cc         bool

	// Effect.
	endD                               [8]uint32
	endA                               [8]uint32
	endX, endN, endZ, endV, endC       bool
	dClock, dInstrs, endPhase, sliceIn int64
	dRegions                           [m68k.NumRegions]int64
	endPC                              int
	status                             m68k.Status
	halted                             bool
	lastBlock                          m68k.BlockInfo
	reads                              []memAccess
	writes                             []memAccess
	events                             []obs.Event // clock-relative
}

// peCache is one PE's share of the segment cache. Per-PE state keeps
// the layer lock-free under parallel host workers (PEs share nothing).
type peCache struct {
	seg map[segKey]*segEntry
	// gate counts each PC's cache probes since its last replay; at
	// memoGateProbes the PC's segments are not repeating and skip the
	// cache for good. One long or uncacheable segment gates
	// immediately.
	gate []int32
	// recent is a ring of first-sighting (pc, digest) pairs. A key
	// enters the map only when its (pc, digest) repeats while still in
	// the ring, so segments whose start states never recur (compute
	// loops carrying advancing pointers) cost neither a map insert nor
	// an entry allocation. The refresh phase is deliberately excluded:
	// a polling segment restarts from the same registers but a
	// different phase every iteration, and each phase variant must
	// still earn its own (full-key) map entry to replay correctly.
	recent  [8]segSight
	recentN uint8
}

// segSight is the phase-blind probation identity of a segment start.
type segSight struct {
	pc     int32
	digest uint64
}

// sighted reports whether key's (pc, digest) is in the recent ring,
// recording it there if not.
func (pe *peCache) sighted(key segKey) bool {
	s := segSight{pc: key.pc, digest: key.digest}
	for _, k := range pe.recent {
		if k == s {
			return true
		}
	}
	pe.recent[pe.recentN&7] = s
	pe.recentN++
	return false
}

// memoState is one VM's segment cache.
type memoState struct {
	prog         *m68k.Program
	pe           []peCache
	hits, misses int64 // atomic (parallel host workers)
}

// memoFor returns the VM's segment cache for prog (building or
// replacing it as needed), or nil when the layer is disabled.
func (vm *VM) memoFor(prog *m68k.Program, n int) *memoState {
	if vm.Cfg.DisableSegmentMemo {
		return nil
	}
	if vm.memo == nil || vm.memo.prog != prog || len(vm.memo.pe) < n {
		ms := &memoState{prog: prog, pe: make([]peCache, n)}
		for i := range ms.pe {
			ms.pe[i] = peCache{
				seg:  make(map[segKey]*segEntry),
				gate: make([]int32, len(prog.Instrs)),
			}
		}
		vm.memo = ms
	}
	return vm.memo
}

// MemoHits and MemoMisses return the VM's cumulative segment-cache
// counters (replayed vs executed segments; both zero when disabled).
func (vm *VM) MemoHits() int64 {
	if vm.memo == nil {
		return 0
	}
	return atomic.LoadInt64(&vm.memo.hits)
}

func (vm *VM) MemoMisses() int64 {
	if vm.memo == nil {
		return 0
	}
	return atomic.LoadInt64(&vm.memo.misses)
}

// segDigest hashes the register file and condition codes (FNV-1a).
func segDigest(c *m68k.CPU) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint32) {
		h = (h ^ uint64(v)) * 1099511628211
	}
	for _, v := range c.D {
		mix(v)
	}
	for _, v := range c.A {
		mix(v)
	}
	var f uint32
	if c.X {
		f |= 1
	}
	if c.N {
		f |= 2
	}
	if c.Z {
		f |= 4
	}
	if c.V {
		f |= 8
	}
	if c.C {
		f |= 16
	}
	mix(f)
	return h
}

// segKeyOf builds the cache key for a CPU's current state.
func segKeyOf(c *m68k.CPU) segKey {
	key := segKey{pc: int32(c.PC), digest: segDigest(c)}
	if c.Mem.RefreshPeriod > 0 {
		if ph := c.Mem.RefreshPhase(c.Clock); ph > 0 {
			key.phase = ph
		}
	}
	return key
}

// matches reports whether the entry's guard equals the CPU's full
// start state (digest collisions stop here).
func (e *segEntry) matches(c *m68k.CPU) bool {
	return e.d == c.D && e.a == c.A &&
		e.x == c.X && e.n == c.N && e.z == c.Z && e.v == c.V && e.cc == c.C
}

// memoizable reports whether a segment-terminating status is safe to
// cache (errors and overruns are not).
func memoizable(st m68k.Status) bool {
	switch st {
	case m68k.StatusBlocked, m68k.StatusHalted, m68k.StatusSIMDJump:
		return true
	}
	return false
}

// segRun is the engine's plain segment executor: run to the next
// non-OK status, reporting the status, whether the global step budget
// overran, and the budget slices consumed.
type segRun func(cpu *m68k.CPU) (st m68k.Status, overrun bool, slices int64)

// advance runs one PE's computation segment through the cache:
// verified hits replay, everything else falls through to run (with
// recording on a key's second sighting).
func (ms *memoState) advance(vm *VM, i int, cpu *m68k.CPU, total *int64, run segRun) (m68k.Status, bool) {
	pe := &ms.pe[i]
	pc := cpu.PC
	if uint(pc) >= uint(len(pe.gate)) || pe.gate[pc] >= memoGateProbes {
		atomic.AddInt64(&ms.misses, 1)
		st, overrun, _ := run(cpu)
		return st, overrun
	}
	pe.gate[pc]++
	key := segKeyOf(cpu)
	e := pe.seg[key]
	if e == nil {
		if !pe.sighted(key) || len(pe.seg) >= memoMaxEntries {
			atomic.AddInt64(&ms.misses, 1)
			before := cpu.InstrCount
			st, overrun, _ := run(cpu)
			if cpu.InstrCount-before > memoMaxSegInstrs {
				pe.gate[pc] = memoGateProbes
			}
			return st, overrun
		}
		// Second sighting of a repeating start state: record it.
		e = &segEntry{state: segSeen}
		pe.seg[key] = e
	}
	if e.state == segReady && e.matches(cpu) && e.verify(cpu.Mem) {
		// Replaying would consume the recorded budget slices; if that
		// would overrun, re-execute so the overrun aborts at the exact
		// mid-segment state the plain engine would stop in.
		if atomic.LoadInt64(total)+e.sliceIn > vm.Cfg.MaxSteps {
			atomic.AddInt64(&ms.misses, 1)
			st, overrun, _ := run(cpu)
			return st, overrun
		}
		atomic.AddInt64(&ms.hits, 1)
		atomic.AddInt64(total, e.sliceIn)
		pe.gate[pc] = 0
		e.replay(vm, i, cpu)
		return e.status, false
	}
	atomic.AddInt64(&ms.misses, 1)
	if e.state != segSeen {
		// Guard mismatch (digest collision) or stale reads: run plain.
		// The entry keeps its effect — memory may well return to the
		// recorded pre-state (polling loops alternate).
		st, overrun, _ := run(cpu)
		return st, overrun
	}
	st, overrun := ms.record(vm, i, cpu, e, run)
	if e.state == segDead {
		pe.gate[pc] = memoGateProbes
		delete(pe.seg, key)
	}
	return st, overrun
}

// record executes the segment once more with capture hooks attached
// and promotes the entry to segReady (or segDead past a cap).
func (ms *memoState) record(vm *VM, i int, cpu *m68k.CPU, e *segEntry, run segRun) (m68k.Status, bool) {
	e.d, e.a = cpu.D, cpu.A
	e.x, e.n, e.z, e.v, e.cc = cpu.X, cpu.N, cpu.Z, cpu.V, cpu.C
	startClock := cpu.Clock
	startRegions := cpu.Regions
	startInstrs := cpu.InstrCount

	// Capture hooks detach themselves the moment the segment exceeds a
	// cap: the rest of the (possibly long) segment then runs at full
	// speed with the superinstruction loop executors re-enabled.
	dead := false
	prevTrace := cpu.Trace
	detach := func() {
		dead = true
		cpu.MemWatch = nil
		cpu.Trace = prevTrace
	}
	written := make(map[uint32]struct{}, 16)
	cpu.MemWatch = func(addr uint32, sz m68k.Size, val uint32, write bool) {
		n := sz.Bytes()
		if write {
			if len(e.writes) >= memoMaxWrites {
				detach()
				return
			}
			e.writes = append(e.writes, memAccess{addr: addr, val: val, sz: sz})
			for b := uint32(0); b < n; b++ {
				written[addr+b] = struct{}{}
			}
			return
		}
		// A read is a pre-state dependency only where the segment has
		// not already written; partially self-written reads cannot be
		// verified against pre-state, so the segment is not cached.
		w := uint32(0)
		for b := uint32(0); b < n; b++ {
			if _, ok := written[addr+b]; ok {
				w++
			}
		}
		switch {
		case w == n:
			return // internally determined
		case w != 0:
			detach()
		case len(e.reads) >= memoMaxReads:
			detach()
		default:
			e.reads = append(e.reads, memAccess{addr: addr, val: val, sz: sz})
		}
	}
	if prevTrace != nil && vm.Obs != nil {
		cpu.Trace = func(in *m68k.Instr, pc int, clock, cycles int64) {
			prevTrace(in, pc, clock, cycles)
			if dead {
				// The memory watch detached first; mirror it.
				cpu.Trace = prevTrace
				return
			}
			if len(e.events) >= memoMaxEvents {
				detach()
				return
			}
			e.events = append(e.events, obs.Event{
				Kind: obs.KindInstr, PC: int32(pc),
				Clock: clock - startClock, Dur: cycles, Arg: int64(in.Op),
			})
		}
	}

	st, overrun, slices := run(cpu)
	cpu.MemWatch = nil
	cpu.Trace = prevTrace

	if overrun || dead || !memoizable(st) {
		e.state = segDead
		e.reads, e.writes, e.events = nil, nil, nil
		return st, overrun
	}
	e.endD, e.endA = cpu.D, cpu.A
	e.endX, e.endN, e.endZ, e.endV, e.endC = cpu.X, cpu.N, cpu.Z, cpu.V, cpu.C
	e.dClock = cpu.Clock - startClock
	for r := range e.dRegions {
		e.dRegions[r] = cpu.Regions[r] - startRegions[r]
	}
	e.dInstrs = cpu.InstrCount - startInstrs
	e.endPC = cpu.PC
	e.endPhase = cpu.Mem.RefreshPhase(cpu.Clock)
	e.status = st
	e.halted = cpu.Halted
	e.lastBlock = cpu.LastBlock
	e.sliceIn = slices * memoSliceSteps
	e.state = segReady
	return st, false
}

// verify checks every recorded pre-state read against current memory.
func (e *segEntry) verify(mem *m68k.Memory) bool {
	for _, r := range e.reads {
		v, err := mem.Read(r.addr, r.sz)
		if err != nil || v != r.val {
			return false
		}
	}
	return true
}

// replay applies the segment's effect to the live CPU.
func (e *segEntry) replay(vm *VM, i int, cpu *m68k.CPU) {
	base := cpu.Clock
	cpu.D, cpu.A = e.endD, e.endA
	cpu.X, cpu.N, cpu.Z, cpu.V, cpu.C = e.endX, e.endN, e.endZ, e.endV, e.endC
	cpu.Clock += e.dClock
	for r := range e.dRegions {
		cpu.Regions[r] += e.dRegions[r]
	}
	cpu.InstrCount += e.dInstrs
	cpu.PC = e.endPC
	cpu.Halted = e.halted
	cpu.LastBlock = e.lastBlock
	cpu.Mem.SetRefreshPhase(cpu.Clock, e.endPhase)
	for _, w := range e.writes {
		cpu.Mem.Write(w.addr, w.sz, w.val) //nolint:errcheck // recorded writes re-apply in bounds
	}
	if vm.Obs != nil && len(e.events) > 0 {
		unit := vm.obsPE[i]
		for _, ev := range e.events {
			ev.Clock += base
			vm.Obs.Emit(unit, ev)
		}
	}
}
