// Observability wiring: connects a run's CPUs, device buses and Fetch
// Unit queues to the recorder attached via Config.Obs/VM.Obs. All
// hooks are nil-checked at the publication site, so a detached
// recorder leaves the hot paths untouched; attached, each simulated
// unit publishes to its own buffer/registry, which keeps recording
// lock-free under Config.HostWorkers (each unit is advanced by one
// host goroutine at a time).
package pasm

import (
	"fmt"

	"repro/internal/m68k"
	"repro/internal/obs"
)

// wireObsPEs registers one recorder unit per PE, attaches the
// per-instruction CPU hook, and points the device buses at the
// recorder (or detaches them when no recorder is set). Returns true
// when a recorder is attached.
func (vm *VM) wireObsPEs(cpus []*m68k.CPU) bool {
	if vm.Obs == nil {
		for _, pe := range vm.PEs {
			pe.dev.rec = nil
		}
		return false
	}
	if vm.obsPE == nil {
		vm.obsPE = make([]int, vm.P)
	}
	for i, pe := range vm.PEs {
		unit := vm.Obs.Unit(fmt.Sprintf("PE%d", i))
		vm.obsPE[i] = unit
		pe.dev.rec = vm.Obs
		pe.dev.unit = unit
		vm.Obs.AttachCPU(unit, cpus[i])
	}
	return true
}

// finishObsPEs records each PE's end-of-run totals.
func (vm *VM) finishObsPEs(cpus []*m68k.CPU) {
	if vm.Obs == nil {
		return
	}
	for i, cpu := range cpus {
		vm.Obs.Finish(vm.obsPE[i], cpu.Clock, cpu.InstrCount)
	}
}

// wireObsMC registers one recorder unit per MC, attaches the MC CPU
// hook, and observes the group's Fetch Unit queue (enqueue completion,
// instruction release, occupancy after both). When no recorder is set
// it clears any hooks a previous run installed. Returns the MC's unit
// id (unused when detached).
func (vm *VM) wireObsMC(g int, cpu *m68k.CPU) int {
	queue := vm.MCs[g].Queue
	if vm.Obs == nil {
		queue.OnEnqueue = nil
		queue.OnConsume = nil
		return 0
	}
	rec := vm.Obs
	unit := rec.Unit(fmt.Sprintf("MC%d", g))
	rec.AttachCPU(unit, cpu)
	queue.OnEnqueue = func(issue, ready int64, words, pending int) {
		rec.Emit(unit, obs.Event{
			Kind: obs.KindFetchEnqueue, Clock: ready,
			Dur: ready - issue, Arg: int64(words),
		})
		rec.Emit(unit, obs.Event{Kind: obs.KindQueueDepth, Clock: ready, Arg: int64(pending)})
	}
	queue.OnConsume = func(t int64, words, pending int) {
		rec.Emit(unit, obs.Event{Kind: obs.KindFetchRelease, Clock: t, Arg: int64(words)})
		rec.Emit(unit, obs.Event{Kind: obs.KindQueueDepth, Clock: t, Arg: int64(pending)})
	}
	return unit
}

// emitModeSwitch publishes every PE's mode transition in a mixed
// SIMD/MIMD program (toMIMD: entering the asynchronous section at its
// current clock; otherwise rejoining the lockstep stream).
func (vm *VM) emitModeSwitch(cpus []*m68k.CPU, toMIMD bool) {
	if vm.Obs == nil {
		return
	}
	arg := int64(0)
	if toMIMD {
		arg = 1
	}
	for i, cpu := range cpus {
		vm.Obs.Emit(vm.obsPE[i], obs.Event{Kind: obs.KindModeSwitch, Clock: cpu.Clock, Arg: arg})
	}
}
