package pasm

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/m68k"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// obsTestSrc is a 2-PE S/MIMD-style exchange: a data-dependent MULU, a
// skewed spin loop, a Fetch-Unit barrier, then a polling-free ring
// send/recv — every event class the observability layer records.
const obsTestSrc = `
	movea.l	#$F10000, a0	; network transmit register
	movea.l	#$F00000, a1	; SIMD space: barrier on read
	move.w	$100, d1	; per-PE multiplier (sets MULU time)
	mulu.w	d1, d0
	move.w	$102, d0	; skew: per-PE busy-work count
spin:	dbra	d0, spin
	move.w	(a1), d7	; BARRIER: all PEs aligned
	move.b	d1, (a0)	; send multiplier's low byte
	move.w	(a1), d7	; BARRIER: all data in flight
	move.b	2(a0), d2	; receive
	move.w	d2, $104
	halt
`

// runObsProgram runs the exchange on 2 PEs with rec attached (rec may
// be nil for a detached run). PE0 multiplies by $0003 (two one-bits:
// 42 cycles) and spins briefly; PE1 multiplies by $FFFF (70 cycles)
// and spins ten times longer, so PE0 accumulates real barrier wait.
func runObsProgram(t *testing.T, rec *obs.Recorder, workers int) (RunResult, *m68k.Program) {
	t.Helper()
	vm := newTestVM(t, 2, func(c *Config) {
		c.Obs = rec
		c.HostWorkers = workers
	})
	prog := m68k.MustAssemble(obsTestSrc)
	data := [][]uint16{{0x0003, 40}, {0xFFFF, 400}}
	for i, pe := range vm.PEs {
		if err := pe.Mem.WriteWords(0x100, data[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := vm.RunMIMD(prog)
	if err != nil {
		t.Fatal(err)
	}
	return res, prog
}

// TestChromeTraceGolden pins the exporter's byte-exact output for the
// 2-PE exchange. Regenerate with: go test ./internal/pasm -run Golden -update
func TestChromeTraceGolden(t *testing.T) {
	rec := obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	_, prog := runObsProgram(t, rec, 1)

	var buf bytes.Buffer
	disasm := func(pc int) string { return prog.Instrs[pc].String() }
	if err := obs.WriteChromeTrace(&buf, rec, disasm); err != nil {
		t.Fatal(err)
	}
	if _, err := obs.ValidateChromeTrace(buf.Bytes()); err != nil {
		t.Fatalf("exporter emitted an invalid trace: %v", err)
	}

	golden := filepath.Join("testdata", "trace_smimd_2pe.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace differs from %s (%d vs %d bytes); run with -update if the change is intended",
			golden, buf.Len(), len(want))
	}

	// Semantic pins behind the bytes: two barrier rounds over two PEs
	// give four barrier-wait slices, and PE0 (fast arrival) waits
	// longer than PE1 (slow arrival) in the first round.
	var waits []obs.Event
	for _, ev := range rec.Merged() {
		if ev.Kind == obs.KindBarrierRelease {
			waits = append(waits, ev)
		}
	}
	if len(waits) != 4 {
		t.Fatalf("barrier-wait slices = %d, want 4", len(waits))
	}
	var pe0, pe1 int64
	for _, ev := range waits[:2] { // first round: earliest two releases
		if ev.Unit == 0 {
			pe0 = ev.Dur
		} else {
			pe1 = ev.Dur
		}
	}
	if pe0 <= pe1 {
		t.Errorf("round 1 waits: PE0 %d <= PE1 %d; the fast PE should wait longer", pe0, pe1)
	}

	// The MULU histogram must see exactly the two data-dependent
	// timings: 38+2*ones(0x0003)=42 and 38+2*ones(0xFFFF)=70 execution
	// cycles, plus the partition memory's one DRAM wait state.
	h := rec.Metrics().Histogram("mulu_cycles")
	if h == nil || h.N != 2 || h.Min != 43 || h.Max != 71 {
		t.Fatalf("mulu_cycles histogram = %+v, want N=2 min=43 max=71", h)
	}
}

// TestObsAttachedMatchesDetached: attaching the recorder must not
// change any simulated result.
func TestObsAttachedMatchesDetached(t *testing.T) {
	rec := obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	attached, _ := runObsProgram(t, rec, 1)
	detached, _ := runObsProgram(t, nil, 1)
	if !reflect.DeepEqual(attached, detached) {
		t.Errorf("attached run %+v != detached run %+v", attached, detached)
	}
}

// TestObsDeterministicAcrossHostWorkers: the merged event stream and
// the aggregated metrics are identical whether the PEs are advanced by
// one host goroutine or several.
func TestObsDeterministicAcrossHostWorkers(t *testing.T) {
	rec1 := obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	res1, _ := runObsProgram(t, rec1, 1)
	rec4 := obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	res4, _ := runObsProgram(t, rec4, 4)

	if !reflect.DeepEqual(res1, res4) {
		t.Errorf("results differ across workers: %+v vs %+v", res1, res4)
	}
	if !reflect.DeepEqual(rec1.Merged(), rec4.Merged()) {
		t.Error("merged event streams differ across host worker counts")
	}
	if !reflect.DeepEqual(rec1.Metrics().Flatten(""), rec4.Metrics().Flatten("")) {
		t.Error("aggregated metrics differ across host worker counts")
	}
}

// TestObsListingInterleavesDeviceEvents: the -trace listing carries
// barrier and network lines between the instruction lines.
func TestObsListingInterleavesDeviceEvents(t *testing.T) {
	rec := obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	_, prog := runObsProgram(t, rec, 1)
	var buf bytes.Buffer
	obs.WriteListing(&buf, rec, func(pc int) string { return prog.Instrs[pc].String() })
	out := buf.String()
	for _, want := range []string{"barrier", "net", "mulu"} {
		if !strings.Contains(out, want) {
			t.Errorf("listing has no %q line:\n%s", want, out)
		}
	}
}
