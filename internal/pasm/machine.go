package pasm

import (
	"fmt"

	"repro/internal/fetchunit"
	"repro/internal/m68k"
	"repro/internal/obs"
)

// Config holds the machine parameters of the simulated prototype. The
// defaults follow the PASM prototype description in Section 3 of the
// paper; every parameter the evaluation is sensitive to is exposed so
// that the ablation benchmarks can vary it.
type Config struct {
	// NumPEs is the machine's total PE count (prototype: 16).
	NumPEs int
	// PEsPerMC is the number of PEs per Micro Controller (prototype:
	// N/Q = 16/4 = 4).
	PEsPerMC int
	// PEMemBytes is each PE's main-memory size.
	PEMemBytes uint32
	// MCMemBytes is each MC's memory size.
	MCMemBytes uint32

	// QueueDepthWords is the Fetch Unit queue capacity in instruction
	// words. Finite depth is what bounds the MC's run-ahead.
	QueueDepthWords int
	// QueueWordCycles is the Fetch Unit controller's time to move one
	// word from Fetch Unit RAM into the queue.
	QueueWordCycles int64

	// DRAMWaitStates is the extra cycles per PE main-memory access;
	// the Fetch Unit queue (static RAM) has none, which is the paper's
	// "one less wait state" SIMD fetch advantage.
	DRAMWaitStates int64
	// RefreshPeriod/RefreshStall model DRAM refresh interference
	// (cycles between charged collisions, and the stall per collision).
	RefreshPeriod int64
	RefreshStall  int64

	// NetLatency is the circuit traversal time from a transmit-register
	// store to receive-register availability.
	NetLatency int64
	// NetAccessExtra is the extra bus time per transfer-register access.
	NetAccessExtra int64
	// NetSetupCycles is the cost of a run-time circuit establishment
	// through the network control register (path set-up is "a time
	// consuming operation" on the circuit-switched prototype).
	NetSetupCycles int64
	// BarrierExtra is the mode-switching overhead charged per barrier
	// read in S/MIMD mode (jump into and out of the SIMD space).
	BarrierExtra int64

	// FixedMulCycles, when positive, replaces the data-dependent MULU
	// time with a constant (ablation: removes the non-deterministic
	// instruction times under study). Zero means faithful behaviour.
	FixedMulCycles int64

	// Interpreter-tier selection. All false (the default) runs the
	// fastest configuration: superinstruction dispatch plus MIMD
	// segment memoization. DisableSuperinstructions drops to per-Step
	// exec-table dispatch, DisableExecTable to the dynamic reference
	// interpreter, and DisableSegmentMemo turns off the MIMD/S-MIMD
	// segment cache. Simulated results are identical for every
	// combination — these are host-side A/B verification knobs only.
	DisableExecTable         bool
	DisableSuperinstructions bool
	DisableSegmentMemo       bool

	// ClockHz converts cycles to seconds (prototype: 8 MHz MC68000s).
	ClockHz float64

	// MaxSteps bounds per-CPU instruction counts as a runaway guard.
	MaxSteps int64

	// HostWorkers is the number of host goroutines used to advance PEs
	// between synchronization points in MIMD execution. This is host
	// parallelism only — the simulated timeline is byte-identical for
	// any value. 0 or 1 means serial.
	HostWorkers int

	// Obs, when non-nil, receives the run's event stream and metrics
	// (see package obs). Host-side observability only: everything it
	// records is derived from simulated quantities and a nil recorder
	// costs one pointer test per hook, so attaching it never changes
	// simulated results.
	Obs *obs.Recorder

	// Net, when non-nil, supplies the machine's circuit-switched
	// network instead of a private Extra-Stage Cube — the partitioned-
	// machine path, where a VM's circuits live in its partition's
	// subcube view of the shared physical network (internal/partition).
	// Its Size must equal max(NumPEs, 2), the size a standalone VM's
	// private network would have, so establishment outcomes — and
	// therefore cycle counts — are identical either way. NewVM releases
	// any circuits the view still holds, giving every VM the fresh
	// network a standalone machine starts with.
	Net Net
}

// DefaultConfig returns the prototype-like configuration used by all
// experiments unless a parameter is being ablated.
func DefaultConfig() Config {
	return Config{
		NumPEs:          16,
		PEsPerMC:        4,
		PEMemBytes:      1 << 20,
		MCMemBytes:      1 << 16,
		QueueDepthWords: 128,
		QueueWordCycles: 2,
		DRAMWaitStates:  1,
		RefreshPeriod:   256,
		RefreshStall:    2,
		NetLatency:      4,
		NetAccessExtra:  2,
		NetSetupCycles:  64,
		BarrierExtra:    4,
		ClockHz:         8e6,
		MaxSteps:        1 << 40,
	}
}

// Validate checks configuration consistency.
func (c Config) Validate() error {
	switch {
	case c.NumPEs < 1 || c.NumPEs&(c.NumPEs-1) != 0:
		return fmt.Errorf("pasm: NumPEs %d must be a power of two", c.NumPEs)
	case c.PEsPerMC < 1 || c.NumPEs%c.PEsPerMC != 0:
		return fmt.Errorf("pasm: PEsPerMC %d must divide NumPEs %d", c.PEsPerMC, c.NumPEs)
	case c.QueueDepthWords < 4:
		return fmt.Errorf("pasm: queue depth %d too small to hold one instruction", c.QueueDepthWords)
	case c.QueueWordCycles < 1:
		return fmt.Errorf("pasm: QueueWordCycles %d < 1", c.QueueWordCycles)
	case c.PEMemBytes < 4096:
		return fmt.Errorf("pasm: PE memory %d bytes too small", c.PEMemBytes)
	case c.ClockHz <= 0:
		return fmt.Errorf("pasm: ClockHz must be positive")
	case c.MaxSteps < 1:
		return fmt.Errorf("pasm: MaxSteps must be positive")
	case c.HostWorkers < 0:
		return fmt.Errorf("pasm: HostWorkers %d < 0", c.HostWorkers)
	}
	return nil
}

// PE is one processing element: a processor/memory pair. The CPU is
// created per run (each RunSIMD/RunMIMD call starts from reset state);
// the memory persists across runs so hosts can load data once and
// inspect results after.
type PE struct {
	Index int
	Mem   *m68k.Memory
	dev   *deviceBus
}

// MC is one Micro Controller: processor (created per run), memory, and
// Fetch Unit.
type MC struct {
	Index int
	Mem   *m68k.Memory
	Queue *fetchunit.Queue
	Mask  fetchunit.Mask
	// PEs are the group members this MC controls.
	PEs []*PE
}

// VM is a virtual machine: a partition of p PEs controlled by
// ceil(p/PEsPerMC) MCs, with its own network circuits. It can run SIMD
// programs (RunSIMD), asynchronous MIMD programs (RunMIMD), and MIMD
// programs with barrier synchronization — the paper's S/MIMD mode —
// which are simply MIMD programs that read from the SIMD space.
type VM struct {
	Cfg Config
	P   int // PEs in this partition
	Q   int // MCs in this partition
	// Base is the partition's first physical PE number when allocated
	// from a System (0 for stand-alone VMs, -1 after release).
	Base int

	PEs []*PE
	MCs []*MC
	net *netState
	bar *barrier
	// memo is the MIMD/S-MIMD segment cache (see memo.go), built
	// lazily per program and kept across runs.
	memo *memoState

	// TraceHook, when non-nil, is called for every CPU a run creates
	// ("PE0".."PEn", "MC0"..), so callers can attach tracers before
	// execution starts.
	TraceHook func(unit string, cpu *m68k.CPU)

	// Obs, when non-nil, records the event stream and metrics of every
	// run (copied from Config.Obs by NewVM; assignable directly).
	Obs *obs.Recorder
	// obsPE maps PE index to its recorder unit id for the current run.
	obsPE []int
}

// NewVM builds a partition of p PEs.
func NewVM(cfg Config, p int) (*VM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if p < 1 || p > cfg.NumPEs || p&(p-1) != 0 {
		return nil, fmt.Errorf("pasm: partition size %d invalid for a %d-PE machine", p, cfg.NumPEs)
	}
	q := (p + cfg.PEsPerMC - 1) / cfg.PEsPerMC
	// The partition maps onto the machine-sized Extra-Stage Cube (the
	// prototype has one 16-line network shared by all partitions);
	// PE i of the partition uses network line i. A Config.Net (a
	// partition's subcube view of a larger shared network) replaces
	// the private network; the subcube isomorphism keeps results
	// identical.
	var net *netState
	if cfg.Net != nil {
		if got, want := cfg.Net.Size(), maxInt(cfg.NumPEs, 2); got != want {
			return nil, fmt.Errorf("pasm: injected network has %d lines, a %d-PE machine needs %d", got, cfg.NumPEs, want)
		}
		cfg.Net.ReleaseAll() // a new VM starts with no circuits
		net = netStateOn(cfg.Net, cfg.NetLatency, cfg.NetAccessExtra, cfg.NetSetupCycles)
	} else {
		var err error
		net, err = newNetState(maxInt(cfg.NumPEs, 2), cfg.NetLatency, cfg.NetAccessExtra, cfg.NetSetupCycles)
		if err != nil {
			return nil, err
		}
	}
	vm := &VM{Cfg: cfg, P: p, Q: q, net: net, bar: newBarrier(p), Obs: cfg.Obs}
	for i := 0; i < p; i++ {
		mem := m68k.NewMemory(cfg.PEMemBytes)
		mem.WaitStates = cfg.DRAMWaitStates
		mem.RefreshPeriod = cfg.RefreshPeriod
		mem.RefreshStall = cfg.RefreshStall
		pe := &PE{Index: i, Mem: mem}
		pe.dev = &deviceBus{pe: i, net: net, bar: vm.bar, barX: cfg.BarrierExtra}
		vm.PEs = append(vm.PEs, pe)
	}
	for g := 0; g < q; g++ {
		mem := m68k.NewMemory(cfg.MCMemBytes)
		mem.WaitStates = cfg.DRAMWaitStates
		mem.RefreshPeriod = cfg.RefreshPeriod
		mem.RefreshStall = cfg.RefreshStall
		queue, err := fetchunit.NewQueue(cfg.QueueDepthWords, cfg.QueueWordCycles)
		if err != nil {
			return nil, err
		}
		mc := &MC{Index: g, Mem: mem, Queue: queue}
		lo := g * cfg.PEsPerMC
		hi := minInt(lo+cfg.PEsPerMC, p)
		mc.PEs = vm.PEs[lo:hi]
		mc.Mask = fetchunit.AllEnabled(len(mc.PEs))
		vm.MCs = append(vm.MCs, mc)
	}
	return vm, nil
}

// EstablishShift sets up the static circuit permutation
// PE i -> PE (i-1) mod p used by the matrix-multiplication algorithm.
func (vm *VM) EstablishShift() error {
	perm := make([]int, vm.net.nw.Size())
	for i := range perm {
		perm[i] = -1
	}
	if vm.P == 1 {
		return vm.net.Establish(perm) // single PE: no circuits
	}
	for i := 0; i < vm.P; i++ {
		perm[i] = (i - 1 + vm.P) % vm.P
	}
	return vm.net.Establish(perm)
}

// EstablishPermutation sets up an arbitrary circuit permutation
// (perm[src] = dst, -1 to skip).
func (vm *VM) EstablishPermutation(perm []int) error {
	full := make([]int, vm.net.nw.Size())
	for i := range full {
		full[i] = -1
	}
	copy(full, perm)
	return vm.net.Establish(full)
}

// FailNetworkBox marks an interchange box of this partition's
// Extra-Stage Cube faulty. Call before establishing circuits: later
// Establish calls route around the fault via the extra stage (the
// ESC's single-fault tolerance).
func (vm *VM) FailNetworkBox(stage, box int) error {
	return vm.net.nw.FailBox(stage, box)
}

// NetTransfers returns completed byte deliveries in the last run.
func (vm *VM) NetTransfers() int64 { return vm.net.transfers }

// NetReconfigs returns run-time circuit establishments in the last run.
func (vm *VM) NetReconfigs() int64 { return vm.net.reconfigs }

// BarrierRounds returns completed barrier rounds in the last run.
func (vm *VM) BarrierRounds() int { return vm.bar.rounds }

// RunResult reports a completed run.
type RunResult struct {
	// Cycles is the virtual machine's completion time: the latest PE
	// clock (the MCs' own completion is control overhead that the
	// paper's timings subsume into it).
	Cycles int64
	// PEClocks are the per-PE completion times.
	PEClocks []int64
	// Regions is the execution-time component breakdown of the
	// critical-path (latest) PE, including time spent waiting at
	// lockstep releases, barriers and network registers, attributed to
	// the waiting instruction's region.
	Regions [m68k.NumRegions]int64
	// Instrs is the total instructions executed by all PEs.
	Instrs int64
	// MCInstrs is the total instructions executed by all MCs
	// (SIMD mode only).
	MCInstrs int64
	// QueueMaxOccupancy is the deepest any Fetch Unit queue got, in
	// words (SIMD mode only).
	QueueMaxOccupancy int
	// PEStarveCycles is the total time PEs spent waiting for the
	// Fetch Unit to finish enqueuing an instruction (all groups).
	// Near zero means control flow was completely hidden — the
	// mechanism behind the paper's superlinear SIMD speed-up.
	PEStarveCycles int64
	// MCStallCycles is the total MC time lost waiting for the Fetch
	// Unit controller before a BCAST, and QueueStallCycles the
	// controller time lost to a full queue (back-pressure).
	MCStallCycles    int64
	QueueStallCycles int64
	// MemoHits and MemoMisses count the MIMD/S-MIMD computation
	// segments this run replayed from, respectively executed through,
	// the segment cache (both zero when the cache is disabled or the
	// run has no asynchronous sections).
	MemoHits, MemoMisses int64
	// BarrierRounds counts completed barrier synchronizations.
	BarrierRounds int
	// NetTransfers counts delivered network bytes.
	NetTransfers int64
	// NetReconfigs counts run-time circuit establishments.
	NetReconfigs int64
}

// Seconds converts the run's cycle count to seconds at the configured
// clock rate.
func (r RunResult) Seconds(cfg Config) float64 {
	return float64(r.Cycles) / cfg.ClockHz
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
