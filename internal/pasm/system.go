package pasm

import (
	"fmt"
	"sync"
)

// System manages the whole PASM machine as a pool of PEs that can be
// partitioned into independent virtual machines — the architecture's
// defining feature ("the processors may be partitioned to form
// independent virtual SIMD and/or MIMD machines of various sizes").
//
// Partitions follow the cube-partitioning rule: a partition of size p
// (a power of two, a multiple of the MC group size) occupies p
// consecutive PEs starting at a multiple of p, so every partition is a
// subcube with its own MCs. Partitions are fully independent — each
// runs in its own goroutine with its own memories, Fetch Units, and
// circuit-switched connections (the circuit-switched network gives
// established partitions no cross-traffic, so simulating per-partition
// circuits is exact).
type System struct {
	cfg Config

	mu    sync.Mutex
	inUse []bool // per PE
}

// NewSystem returns an empty machine.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{cfg: cfg, inUse: make([]bool, cfg.NumPEs)}, nil
}

// Config returns the machine configuration.
func (s *System) Config() Config { return s.cfg }

// FreePEs returns the number of unallocated PEs.
func (s *System) FreePEs() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	free := 0
	for _, u := range s.inUse {
		if !u {
			free++
		}
	}
	return free
}

// Partition allocates a virtual machine of p PEs at the lowest
// available properly aligned base address (a multiple of p). The
// returned VM must be released with Release when the job completes.
func (s *System) Partition(p int) (*VM, error) {
	if p < 1 || p&(p-1) != 0 || p > s.cfg.NumPEs {
		return nil, fmt.Errorf("pasm: partition size %d invalid for a %d-PE machine", p, s.cfg.NumPEs)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	base := -1
	for cand := 0; cand+p <= s.cfg.NumPEs; cand += p {
		ok := true
		for i := cand; i < cand+p; i++ {
			if s.inUse[i] {
				ok = false
				break
			}
		}
		if ok {
			base = cand
			break
		}
	}
	if base < 0 {
		return nil, fmt.Errorf("pasm: no aligned block of %d free PEs (machine fragmented or full)", p)
	}
	vm, err := NewVM(s.cfg, p)
	if err != nil {
		return nil, err
	}
	vm.Base = base
	for i := base; i < base+p; i++ {
		s.inUse[i] = true
	}
	return vm, nil
}

// Release returns a partition's PEs to the pool. Releasing a VM not
// allocated from this system (or twice) is an error.
func (s *System) Release(vm *VM) error {
	if vm == nil {
		return fmt.Errorf("pasm: release of nil partition")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := vm.Base; i < vm.Base+vm.P; i++ {
		if i < 0 || i >= len(s.inUse) || !s.inUse[i] {
			return fmt.Errorf("pasm: release of PEs %d..%d not allocated here", vm.Base, vm.Base+vm.P-1)
		}
	}
	for i := vm.Base; i < vm.Base+vm.P; i++ {
		s.inUse[i] = false
	}
	vm.Base = -1
	return nil
}

// Job is one unit of work for RunJobs: a partition size and a function
// to execute on the allocated virtual machine.
type Job struct {
	// Name identifies the job in results.
	Name string
	// P is the partition size.
	P int
	// Run executes the job on its partition (loading memories,
	// establishing circuits, and calling RunSIMD/RunMIMD as needed).
	Run func(vm *VM) (RunResult, error)
}

// JobResult pairs a job with its outcome.
type JobResult struct {
	Name   string
	Base   int // PE block the job ran on
	Result RunResult
	Err    error
}

// RunJobs allocates a partition per job and runs all jobs
// concurrently, one goroutine per partition — independent virtual
// machines executing simultaneously, as on the real system. It fails
// fast at allocation time if the jobs cannot coexist; individual job
// errors are reported per job.
func (s *System) RunJobs(jobs []Job) ([]JobResult, error) {
	vms := make([]*VM, len(jobs))
	for i, job := range jobs {
		vm, err := s.Partition(job.P)
		if err != nil {
			for _, v := range vms[:i] {
				s.Release(v)
			}
			return nil, fmt.Errorf("pasm: job %q: %w", job.Name, err)
		}
		vms[i] = vm
	}
	results := make([]JobResult, len(jobs))
	var wg sync.WaitGroup
	for i, job := range jobs {
		wg.Add(1)
		go func(i int, job Job, vm *VM) {
			defer wg.Done()
			res, err := job.Run(vm)
			results[i] = JobResult{Name: job.Name, Base: vm.Base, Result: res, Err: err}
		}(i, job, vms[i])
	}
	wg.Wait()
	for _, vm := range vms {
		if err := s.Release(vm); err != nil {
			return results, err
		}
	}
	return results, nil
}
