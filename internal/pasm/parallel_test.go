package pasm

import (
	"runtime"
	"testing"

	"repro/internal/m68k"
)

// Programs with data-dependent compute segments between device
// operations: each PE's segment length differs (keyed by the PE-unique
// word at $100), so with parallel host workers the segments genuinely
// race on the host while the simulated timeline must stay identical.

const skewedRing = `
	; several rounds of: skewed compute, then polling ring transfer.
	movea.l #$F10000, a0    ; xmit
	movea.l #$F10002, a1    ; recv
	movea.l #$F10004, a2    ; tx ready
	movea.l #$F10006, a3    ; rx valid
	move.w  $100, d0        ; PE-unique seed
	moveq   #5, d5          ; rounds
round:	move.w  d0, d2
	mulu.w  d2, d2          ; data-dependent multiply time
work:	mulu.w  d0, d3
	dbra    d2, work        ; skewed segment: seed^2 iterations
txw:	tst.w   (a2)
	beq     txw
	move.b  d0, (a0)
rxw:	tst.w   (a3)
	beq     rxw
	move.b  (a1), d0        ; pass the received value onward
	dbra    d5, round
	move.w  d0, $102
	halt
`

const skewedBarrier = `
	; S/MIMD flavor: skewed compute, then barrier-protected transfer.
	movea.l #$F10000, a0    ; xmit
	movea.l #$F10002, a1    ; recv
	movea.l #$F00000, a4    ; barrier
	move.w  $100, d0
	moveq   #3, d5
round:	move.w  d0, d2
	mulu.w  d2, d2
work:	mulu.w  d0, d3
	dbra    d2, work
	move.w  (a4), d7
	move.b  d0, (a0)
	move.w  (a4), d7
	move.b  (a1), d0
	dbra    d5, round
	move.w  d0, $102
	halt
`

const pureCompute = `
	; no device operations at all: one long phase-1 segment per PE.
	move.w  $100, d0
	move.w  #999, d2
work:	mulu.w  d0, d3
	add.w   d3, d4
	dbra    d2, work
	move.w  d4, $102
	halt
`

// runMIMDWith runs src on a fresh p-PE partition with the given host
// worker count and returns the result plus each PE's output word.
func runMIMDWith(t *testing.T, src string, p, workers int) (RunResult, []uint32) {
	t.Helper()
	vm := newTestVM(t, p, func(c *Config) { c.HostWorkers = workers })
	prog := m68k.MustAssemble(src)
	for i, pe := range vm.PEs {
		if err := pe.Mem.WriteWords(0x100, []uint16{uint16(3 + 2*i)}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := vm.RunMIMD(prog)
	if err != nil {
		t.Fatalf("p=%d workers=%d: %v", p, workers, err)
	}
	out := make([]uint32, p)
	for i, pe := range vm.PEs {
		out[i], _ = pe.Mem.Read(0x102, m68k.Word)
	}
	return res, out
}

// TestParallelMIMDDeterminism: the simulated machine must be
// byte-identical whether PE segments are advanced serially or on
// parallel host goroutines — same cycles, per-PE clocks, region
// breakdowns, event counts, and memory contents.
func TestParallelMIMDDeterminism(t *testing.T) {
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	progs := map[string]string{
		"skewedRing":    skewedRing,
		"skewedBarrier": skewedBarrier,
		"pureCompute":   pureCompute,
	}
	for name, src := range progs {
		for _, p := range []int{2, 4, 16} {
			serial, serialOut := runMIMDWith(t, src, p, 1)
			par, parOut := runMIMDWith(t, src, p, workers)

			if serial.Cycles != par.Cycles {
				t.Errorf("%s p=%d: cycles %d (serial) vs %d (parallel)", name, p, serial.Cycles, par.Cycles)
			}
			for i := range serial.PEClocks {
				if serial.PEClocks[i] != par.PEClocks[i] {
					t.Errorf("%s p=%d: PE %d clock %d vs %d", name, p, i, serial.PEClocks[i], par.PEClocks[i])
				}
			}
			if serial.Regions != par.Regions {
				t.Errorf("%s p=%d: regions %v vs %v", name, p, serial.Regions, par.Regions)
			}
			if serial.Instrs != par.Instrs {
				t.Errorf("%s p=%d: instrs %d vs %d", name, p, serial.Instrs, par.Instrs)
			}
			if serial.BarrierRounds != par.BarrierRounds || serial.NetTransfers != par.NetTransfers ||
				serial.NetReconfigs != par.NetReconfigs {
				t.Errorf("%s p=%d: event counts differ: %+v vs %+v", name, p, serial, par)
			}
			for i := range serialOut {
				if serialOut[i] != parOut[i] {
					t.Errorf("%s p=%d: PE %d output %d vs %d", name, p, i, serialOut[i], parOut[i])
				}
			}
		}
	}
}

// TestParallelMIMDRepeatable: repeated parallel runs of the same
// program agree with each other (guards against scheduling-dependent
// flakiness that a single serial-vs-parallel comparison might miss).
func TestParallelMIMDRepeatable(t *testing.T) {
	workers := runtime.NumCPU()
	if workers < 2 {
		workers = 2
	}
	base, baseOut := runMIMDWith(t, skewedRing, 16, workers)
	for rep := 0; rep < 3; rep++ {
		res, out := runMIMDWith(t, skewedRing, 16, workers)
		if res.Cycles != base.Cycles || res.Instrs != base.Instrs {
			t.Fatalf("rep %d: result drifted: %+v vs %+v", rep, res, base)
		}
		for i := range out {
			if out[i] != baseOut[i] {
				t.Fatalf("rep %d: PE %d output %d vs %d", rep, i, out[i], baseOut[i])
			}
		}
	}
}

// TestHostWorkersValidation: negative worker counts are rejected.
func TestHostWorkersValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HostWorkers = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative HostWorkers accepted")
	}
}
