// Package pasm simulates the PASM prototype machine: processing
// elements (PEs) and Micro Controllers (MCs) built from the m68k
// interpreter, the Fetch Unit queue, the Extra-Stage Cube network, the
// SIMD lockstep executor, the asynchronous MIMD discrete-event engine,
// and the Fetch-Unit barrier used by the hybrid S/MIMD mode.
package pasm

import (
	"repro/internal/escube"
	"repro/internal/m68k"
	"repro/internal/obs"
)

// Memory-mapped device addresses seen by every PE (above
// m68k.DeviceBase). The network appears to the PEs as transfer
// registers; the SIMD instruction space doubles as the barrier
// synchronization mechanism (a data read from it completes only when
// all PEs of the partition have issued one).
const (
	// AddrSIMDSpace is the SIMD instruction space. In MIMD programs a
	// word read from it is the Fetch-Unit barrier synchronization.
	AddrSIMDSpace = 0x00F00000
	// AddrNetXmit is the network transmit register (byte writes).
	AddrNetXmit = 0x00F10000
	// AddrNetRecv is the network receive register (byte reads).
	AddrNetRecv = 0x00F10002
	// AddrNetTxReady reads 1 when the destination's input buffer is
	// free (a transmit would complete immediately).
	AddrNetTxReady = 0x00F10004
	// AddrNetRxValid reads 1 when the receive register holds data.
	AddrNetRxValid = 0x00F10006
	// AddrNetCtrl reconfigures this PE's circuit at run time (word
	// write): the value is the destination line to establish a path
	// to, or NetCtrlRelease to drop the held circuit. Establishing is
	// the expensive circuit-switched path set-up the paper calls "a
	// time consuming operation"; a write that conflicts with standing
	// circuits blocks until they are released.
	AddrNetCtrl = 0x00F10008
	// NetCtrlRelease written to AddrNetCtrl drops the PE's circuit.
	NetCtrlRelease = 0xFFFF
)

// Net is the circuit-switching network a virtual machine's transfer
// registers drive. A standalone VM owns a private escube.Network; a VM
// allocated from a partitioned machine gets an escube.Subcube view of
// the shared physical network, which confines its routing to the
// partition's subcube. Both satisfy this interface with identical
// establishment outcomes for intra-partition traffic (the subcube
// isomorphism, pinned by the escube tests), which is what makes a job
// on a partition cycle-identical to the same job on a standalone
// machine of the partition's size.
type Net interface {
	// Size returns the number of network lines.
	Size() int
	// Establish sets up a circuit src -> dst.
	Establish(src, dst int) error
	// EstablishPermutation establishes perm[src] = dst circuits
	// atomically (-1 entries skipped); on failure nothing is left
	// established.
	EstablishPermutation(perm []int) error
	// Release tears down src's circuit, if any.
	Release(src int)
	// ReleaseAll tears down every circuit this machine holds.
	ReleaseAll()
	// DestOf returns the destination of src's circuit, or -1. This is
	// the per-transfer hot path; implementations must not block on
	// cross-partition state.
	DestOf(src int) int
	// FailBox marks an interchange box faulty (fault-tolerance
	// experiments).
	FailBox(stage, box int) error
}

// netBuf is one PE's single-byte network input register with the
// timestamps needed for cycle-exact simulation.
type netBuf struct {
	val     uint8
	hasData bool
	availAt int64 // when in-flight data reaches the register
	freedAt int64 // when the register was last consumed
}

// netState is the shared state of one virtual machine's established
// network circuits.
type netState struct {
	nw      Net
	bufs    []netBuf
	latency int64 // TX-store to RX-availability, through the circuit
	extra   int64 // extra cycles per transfer-register access
	setup   int64 // cycles to establish a circuit at run time

	// transfers counts completed byte deliveries (observability);
	// reconfigs counts run-time path establishments.
	transfers int64
	reconfigs int64
}

func newNetState(size int, latency, extra, setup int64) (*netState, error) {
	nw, err := escube.New(size)
	if err != nil {
		return nil, err
	}
	return netStateOn(nw, latency, extra, setup), nil
}

// netStateOn wraps an existing network (a partition's subcube view, or
// a test fake) in fresh transfer-register state.
func netStateOn(nw Net, latency, extra, setup int64) *netState {
	return &netState{
		nw: nw, bufs: make([]netBuf, nw.Size()),
		latency: latency, extra: extra, setup: setup,
	}
}

// reconfig handles a run-time write to the network control register:
// drop the held circuit (dst == NetCtrlRelease) or establish a new
// one. Establishment that conflicts with standing circuits reports
// ok=false so the caller blocks and retries after other PEs release.
func (n *netState) reconfig(src int, dst uint32, t int64) (extra int64, ok bool) {
	n.nw.Release(src)
	if dst == NetCtrlRelease {
		return 0, true
	}
	if int(dst) >= n.nw.Size() {
		return 0, true // write to nowhere: path setup fails silently, as hardware would
	}
	if err := n.nw.Establish(src, int(dst)); err != nil {
		return 0, false
	}
	n.reconfigs++
	return n.setup, true
}

// Establish sets the static circuit permutation for a run.
func (n *netState) Establish(perm []int) error {
	n.nw.ReleaseAll()
	return n.nw.EstablishPermutation(perm)
}

// reset clears buffers but keeps circuits.
func (n *netState) reset() {
	for i := range n.bufs {
		n.bufs[i] = netBuf{}
	}
	n.transfers = 0
	n.reconfigs = 0
}

// send attempts PE src's transmit at time t. ok=false means the
// destination register still holds unconsumed data (the hardware
// refuses the store; MIMD programs poll to avoid this, lockstep
// programs are ordered to make it impossible).
func (n *netState) send(src int, val uint8, t int64) (extra int64, ok bool) {
	dst := n.nw.DestOf(src)
	if dst < 0 {
		return 0, true // no circuit: store is dropped into the void (path not set up)
	}
	b := &n.bufs[dst]
	if b.hasData {
		return 0, false
	}
	start := t
	if b.freedAt > start {
		// The register frees "in the simulation's past" but at a later
		// timestamp than this store (lockstep groups may be processed
		// out of time order); the store waits for the hardware.
		start = b.freedAt
	}
	b.val = val
	b.hasData = true
	b.availAt = start + n.latency
	n.transfers++
	return start - t + n.extra, true
}

// recv attempts PE dst's receive at time t. ok=false means nothing is
// in flight to this register yet.
func (n *netState) recv(dst int, t int64) (val uint8, extra int64, ok bool) {
	b := &n.bufs[dst]
	if !b.hasData {
		return 0, 0, false
	}
	done := t
	if b.availAt > done {
		done = b.availAt // data still in the network: wait for it
	}
	b.hasData = false
	b.freedAt = done
	return b.val, done - t + n.extra, true
}

// txReady reports whether PE src could complete a send at time t.
func (n *netState) txReady(src int, t int64) bool {
	dst := n.nw.DestOf(src)
	if dst < 0 {
		return true
	}
	b := &n.bufs[dst]
	return !b.hasData && b.freedAt <= t
}

// rxValid reports whether PE dst has receivable data at time t.
func (n *netState) rxValid(dst int, t int64) bool {
	b := &n.bufs[dst]
	return b.hasData && b.availAt <= t
}

// barrier implements the Fetch-Unit barrier synchronization of
// Section 3: the MC pre-enqueues R arbitrary words; MIMD-mode PEs read
// a word from the SIMD instruction space, and the Fetch Unit releases
// the word only after every enabled PE has requested it.
//
// The paper uses one MC group per barrier; this simulator synchronizes
// the whole virtual machine (multi-MC partitions coordinate their MCs,
// which the prototype's partitioning unit supports). The release time
// is the latest arrival.
type barrier struct {
	p        int
	arrived  []bool  // PE has arrived in the current round
	arrAt    []int64 // that arrival's time (per-PE wait observability)
	hasRel   []bool  // PE has a completed round release to consume
	relAt    []int64 // that release's time
	relRound []int   // that release's round number
	count    int
	latest   int64
	rounds   int
}

func newBarrier(p int) *barrier {
	return &barrier{
		p:        p,
		arrived:  make([]bool, p),
		arrAt:    make([]int64, p),
		hasRel:   make([]bool, p),
		relAt:    make([]int64, p),
		relRound: make([]int, p),
	}
}

// barStatus is the outcome of one barrier read attempt.
type barStatus uint8

const (
	barRegistered barStatus = iota // first read of the round; PE now waits
	barWaiting                     // retried while the round is incomplete
	barReleased                    // round complete; stored release consumed
	barCompleted                   // registered as the last arriver: arrival and release in one call
)

// arrive registers (or retries) PE k's barrier read at time t. The
// read is retry-safe: a first call registers the arrival
// (barRegistered); calls while the round is incomplete stay blocked
// (barWaiting); once the last PE arrives the round is released at the
// latest arrival time and each PE's next call consumes its release
// (barReleased, with the release time, the PE's own arrival time, and
// the round number for wait attribution).
func (b *barrier) arrive(k int, t int64) (release, arrivedAt int64, round int, st barStatus) {
	if b.hasRel[k] {
		b.hasRel[k] = false
		return b.relAt[k], b.arrAt[k], b.relRound[k], barReleased
	}
	if b.arrived[k] {
		return 0, 0, 0, barWaiting // still waiting for the rest of the partition
	}
	b.arrived[k] = true
	b.arrAt[k] = t
	b.count++
	if t > b.latest {
		b.latest = t
	}
	if b.count < b.p {
		return 0, 0, 0, barRegistered
	}
	// Round complete: release everyone at the latest arrival.
	rel := b.latest
	b.rounds++
	for i := range b.arrived {
		b.arrived[i] = false
		b.hasRel[i] = true
		b.relAt[i] = rel
		b.relRound[i] = b.rounds
	}
	b.count = 0
	b.latest = 0
	// The caller consumes its own release immediately.
	b.hasRel[k] = false
	return rel, b.arrAt[k], b.rounds, barCompleted
}

// deviceBus adapts the shared netState/barrier to one PE's
// m68k.DeviceBus. The MIMD engine points `armed` at its active-PE
// marker so that CPUs stop at device operations instead of executing
// them out of global timestamp order; a disarmed probe refuses every
// access. The lockstep executor leaves armed nil (always allowed,
// because it already processes device operations in stream order).
type deviceBus struct {
	pe    int
	net   *netState
	bar   *barrier
	barX  int64 // extra cycles per barrier read (mode-switch cost)
	armed *int  // points at the engine's active-PE marker; nil = always armed

	// rec/unit publish device events to the observability layer when a
	// recorder is attached; nil rec costs one pointer test per access.
	rec  *obs.Recorder
	unit int
}

func (d *deviceBus) isArmed() bool { return d.armed == nil || *d.armed == d.pe }

func (d *deviceBus) Load(addr uint32, sz m68k.Size, clock int64) (uint32, int64, bool) {
	if !d.isArmed() {
		return 0, 0, false
	}
	switch {
	case addr >= AddrSIMDSpace && addr < AddrNetXmit:
		if d.bar == nil {
			return 0, 0, false
		}
		release, arrivedAt, round, st := d.bar.arrive(d.pe, clock)
		switch st {
		case barRegistered:
			if d.rec != nil {
				d.rec.Emit(d.unit, obs.Event{Kind: obs.KindBarrierArrive, Clock: clock})
			}
			return 0, 0, false
		case barWaiting:
			// This PE waits for the rest of the partition; the last
			// arriver's successful read wakes it for a retry, which
			// consumes the release recorded for it.
			return 0, 0, false
		}
		if d.rec != nil {
			if st == barCompleted {
				d.rec.Emit(d.unit, obs.Event{Kind: obs.KindBarrierArrive, Clock: arrivedAt})
			}
			d.rec.Emit(d.unit, obs.Event{
				Kind: obs.KindBarrierRelease, Clock: release,
				Dur: release - arrivedAt, Arg: int64(round),
			})
		}
		return 0, release - clock + d.barX, true
	case addr == AddrNetRecv:
		v, extra, ok := d.net.recv(d.pe, clock)
		if ok && d.rec != nil {
			wait := extra - d.net.extra
			d.rec.Emit(d.unit, obs.Event{Kind: obs.KindNetRecv, Clock: clock + wait, Dur: wait})
		}
		return uint32(v), extra, ok
	case addr == AddrNetTxReady:
		ready := int64(0)
		if d.net.txReady(d.pe, clock) {
			ready = 1
		}
		if d.rec != nil {
			d.rec.Emit(d.unit, obs.Event{Kind: obs.KindNetPoll, Clock: clock, Arg: ready})
		}
		return uint32(ready), 0, true
	case addr == AddrNetRxValid:
		ready := int64(0)
		if d.net.rxValid(d.pe, clock) {
			ready = 1
		}
		if d.rec != nil {
			d.rec.Emit(d.unit, obs.Event{Kind: obs.KindNetPoll, Clock: clock, Arg: ready})
		}
		return uint32(ready), 0, true
	}
	return 0, 0, false
}

func (d *deviceBus) Store(addr uint32, sz m68k.Size, val uint32, clock int64) (int64, bool) {
	if !d.isArmed() {
		return 0, false
	}
	switch addr {
	case AddrNetXmit:
		extra, ok := d.net.send(d.pe, uint8(val), clock)
		if ok && d.rec != nil {
			wait := extra - d.net.extra
			if wait < 0 {
				wait = 0 // no circuit: the store vanished with no register wait
			}
			d.rec.Emit(d.unit, obs.Event{
				Kind: obs.KindNetSend, Clock: clock,
				Dur: wait, Arg: int64(d.net.nw.DestOf(d.pe)),
			})
		}
		return extra, ok
	case AddrNetCtrl:
		extra, ok := d.net.reconfig(d.pe, val&0xFFFF, clock)
		if ok && extra > 0 && d.rec != nil {
			d.rec.Emit(d.unit, obs.Event{
				Kind: obs.KindNetReconfig, Clock: clock + extra,
				Dur: extra, Arg: int64(val & 0xFFFF),
			})
		}
		return extra, ok
	}
	return 0, false
}
