package smoothing

import (
	"reflect"
	"testing"

	"repro/internal/m68k"
	"repro/internal/obs"
	"repro/internal/pasm"
)

// executeWith runs one smoothing configuration end to end with a full
// observability recorder attached, optionally forcing every CPU onto
// the dynamic reference interpreter path instead of the pre-resolved
// execution table.
func executeWith(t *testing.T, spec Spec, img Image, dynamic bool) (pasm.RunResult, Image, *obs.Recorder) {
	t.Helper()
	prog, l, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	cfg.Obs = obs.New(obs.Config{Events: obs.AllKinds, Metrics: true})
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		t.Fatal(err)
	}
	vm.TraceHook = func(unit string, cpu *m68k.CPU) {
		cpu.DisableExecTable = dynamic
	}
	if err := Load(vm, l, img); err != nil {
		t.Fatal(err)
	}
	var res pasm.RunResult
	if spec.Mode == SIMD {
		res, err = vm.RunSIMD(prog)
	} else {
		res, err = vm.RunMIMD(prog)
	}
	if err != nil {
		t.Fatalf("%v run: %v", spec.Mode, err)
	}
	out, err := ReadOut(vm, l)
	if err != nil {
		t.Fatal(err)
	}
	return res, out, cfg.Obs
}

// TestExecTableEquivalenceSmoothing runs every smoothing program
// variant through both interpreter paths and requires identical run
// results, identical output images, and event-for-event identical
// observability streams.
func TestExecTableEquivalenceSmoothing(t *testing.T) {
	const h, w, p = 8, 16, 4
	img := RandomImage(h, w, 0xFACE)
	want := Reference(img)
	for _, mode := range []Mode{Serial, SIMD, MIMD, SMIMD} {
		spec := Spec{H: h, W: w, P: p, Mode: mode}
		resTab, outTab, obsTab := executeWith(t, spec, img, false)
		resDyn, outDyn, obsDyn := executeWith(t, spec, img, true)

		if !reflect.DeepEqual(resTab, resDyn) {
			t.Errorf("%v: run results differ:\ntable:   %+v\ndynamic: %+v", mode, resTab, resDyn)
		}
		if !Equal(outTab, outDyn) {
			t.Errorf("%v: output images differ between interpreter paths", mode)
		}
		if !Equal(outTab, want) {
			t.Errorf("%v: table-path output is wrong", mode)
		}

		te, de := obsTab.Merged(), obsDyn.Merged()
		if len(te) != len(de) {
			t.Errorf("%v: event counts differ: table %d vs dynamic %d", mode, len(te), len(de))
			continue
		}
		for i := range te {
			if te[i] != de[i] {
				t.Errorf("%v: event %d differs: table %+v vs dynamic %+v", mode, i, te[i], de[i])
				break
			}
		}
		tm, dm := obsTab.Metrics().Flatten(""), obsDyn.Metrics().Flatten("")
		if !reflect.DeepEqual(tm, dm) {
			t.Errorf("%v: metrics differ:\ntable:   %v\ndynamic: %v", mode, tm, dm)
		}
	}
}
