package smoothing

import (
	"fmt"

	"repro/internal/pasm"
	"repro/internal/prng"
)

// Image is an H x W image in row-major order; pixel values are 8-bit
// (0..255) held in 16-bit words, matching the machine layout.
type Image [][]uint16

// NewImage returns a zero H x W image.
func NewImage(h, w int) Image {
	img := make(Image, h)
	backing := make([]uint16, h*w)
	for r := range img {
		img[r], backing = backing[:w], backing[w:]
	}
	return img
}

// RandomImage returns an image of uniform 8-bit pixels.
func RandomImage(h, w int, seed uint32) Image {
	img := NewImage(h, w)
	g := prng.New(seed)
	for r := range img {
		for c := range img[r] {
			img[r][c] = g.Uint16() & 0xFF
		}
	}
	return img
}

// Equal reports whether two images are identical.
func Equal(a, b Image) bool {
	if len(a) != len(b) {
		return false
	}
	for r := range a {
		if len(a[r]) != len(b[r]) {
			return false
		}
		for c := range a[r] {
			if a[r][c] != b[r][c] {
				return false
			}
		}
	}
	return true
}

// Reference computes the 3x3 mean filter on the host with the machine
// semantics: vertical wrap-around (torus), horizontal edge columns
// copied through, truncating integer division by 9.
func Reference(img Image) Image {
	h := len(img)
	if h == 0 {
		return nil
	}
	w := len(img[0])
	out := NewImage(h, w)
	for r := 0; r < h; r++ {
		up := img[(r-1+h)%h]
		mid := img[r]
		dn := img[(r+1)%h]
		out[r][0] = mid[0]
		out[r][w-1] = mid[w-1]
		for c := 1; c < w-1; c++ {
			sum := uint32(up[c-1]) + uint32(up[c]) + uint32(up[c+1]) +
				uint32(mid[c-1]) + uint32(mid[c]) + uint32(mid[c+1]) +
				uint32(dn[c-1]) + uint32(dn[c]) + uint32(dn[c+1])
			out[r][c] = uint16(sum / 9)
		}
	}
	return out
}

// Load writes the image strips and neighbour line numbers into the
// partition's PE memories.
func Load(vm *pasm.VM, l Layout, img Image) error {
	if len(img) != l.H || l.H == 0 || len(img[0]) != l.W {
		return fmt.Errorf("smoothing: image is %dx%d, layout wants %dx%d", len(img), len(img[0]), l.H, l.W)
	}
	if vm.P != l.P {
		return fmt.Errorf("smoothing: partition has %d PEs, layout wants %d", vm.P, l.P)
	}
	for i, pe := range vm.PEs {
		pe.Mem.Reset()
		for r := 0; r < l.Rows; r++ {
			addr := l.ImgBase + uint32(r+1)*l.RowBytes // +1: halo-above first
			if err := pe.Mem.WriteWords(addr, img[i*l.Rows+r]); err != nil {
				return err
			}
		}
		up := uint16((i + 1) % l.P)
		dn := uint16((i - 1 + l.P) % l.P)
		if err := pe.Mem.WriteWords(l.DestUp, []uint16{up, dn}); err != nil {
			return err
		}
	}
	return nil
}

// ReadOut extracts the smoothed image.
func ReadOut(vm *pasm.VM, l Layout) (Image, error) {
	out := NewImage(l.H, l.W)
	for i, pe := range vm.PEs {
		for r := 0; r < l.Rows; r++ {
			row, err := pe.Mem.ReadWords(l.OutBase+uint32(r)*l.RowBytes, l.W)
			if err != nil {
				return nil, err
			}
			copy(out[i*l.Rows+r], row)
		}
	}
	return out, nil
}

// Execute builds, loads, runs and reads back one configuration.
func Execute(cfg pasm.Config, spec Spec, img Image) (pasm.RunResult, Image, error) {
	prog, l, err := Build(spec)
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	if need := l.MemBytes(); cfg.PEMemBytes < need {
		cfg.PEMemBytes = need
	}
	vm, err := pasm.NewVM(cfg, l.P)
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	// No host-side circuits: the programs establish their own paths at
	// run time through the network control register.
	if err := Load(vm, l, img); err != nil {
		return pasm.RunResult{}, nil, err
	}
	var res pasm.RunResult
	if spec.Mode == SIMD {
		res, err = vm.RunSIMD(prog)
	} else {
		res, err = vm.RunMIMD(prog)
	}
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	out, err := ReadOut(vm, l)
	if err != nil {
		return pasm.RunResult{}, nil, err
	}
	return res, out, nil
}
