// Package smoothing implements the second workload domain — image
// processing, the application area PASM was designed for ("PASM: a
// partitionable SIMD/MIMD system for image processing and pattern
// recognition"). It runs a 3x3 mean filter over an image of 8-bit
// pixels distributed across the PEs as horizontal strips:
//
//   - each PE holds H/p consecutive image rows plus two halo rows,
//     laid out contiguously so every strip row sees its neighbours at
//     uniform offsets;
//   - before computing, PEs exchange boundary rows with both vertical
//     neighbours (cyclic), which requires *run-time circuit
//     reconfiguration*: the PE i -> i+1 permutation for one phase and
//     PE i -> i-1 for the other, established through the network
//     control register at the circuit-switched set-up cost;
//   - the kernel divides the 9-pixel sum with DIVU, whose time depends
//     on the quotient's bit pattern — a second data-dependent
//     instruction, so the paper's SIMD/MIMD decoupling question
//     reappears in this domain too.
//
// The two exchange phases could race in pure MIMD — PE i's phase-b
// bytes must not reach PE i-1's single receive register before PE i-1
// has drained PE i-2's phase-a bytes — but the circuit-switched
// network itself serializes them: PE i cannot establish its phase-b
// circuit to line i-1 while PE i-2 still holds its phase-a circuit to
// the same destination, and PE i-2 releases only after all its sends
// were accepted. The destination-in-use blocking of path establishment
// is the handshake. SIMD gets the same guarantee from lockstep and
// S/MIMD from one barrier — an instance of the paper's observation
// that implicit hardware synchronization "reduces the complexity of
// message passing protocols".
//
// Horizontal image edges are copied through unfiltered; vertical
// wrap-around is cyclic (torus), matching the ring exchange.
package smoothing

import (
	"fmt"
	"strings"

	"repro/internal/m68k"
	"repro/internal/pasm"
)

// Mode mirrors the four program variants (kept separate from matmul's
// type so the packages stay independent).
type Mode int

// Program variants.
const (
	Serial Mode = iota
	SIMD
	MIMD
	SMIMD
)

func (m Mode) String() string {
	switch m {
	case Serial:
		return "SISD"
	case SIMD:
		return "SIMD"
	case MIMD:
		return "MIMD"
	case SMIMD:
		return "S/MIMD"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Spec describes one smoothing configuration.
type Spec struct {
	// H, W are the image dimensions in pixels. H must be divisible by
	// the PE count; W must be in [4, 8192].
	H, W int
	// P is the number of PEs (ignored for Serial).
	P int
	// Mode selects the program variant.
	Mode Mode
}

// Validate checks the spec.
func (s Spec) Validate() error {
	p := s.p()
	switch {
	case s.W < 4:
		return fmt.Errorf("smoothing: width %d < 4", s.W)
	case s.W > 8192:
		return fmt.Errorf("smoothing: width %d too large for displacement addressing", s.W)
	case s.H < 1:
		return fmt.Errorf("smoothing: height %d < 1", s.H)
	case s.Mode != Serial && (p < 1 || p&(p-1) != 0):
		return fmt.Errorf("smoothing: p=%d must be a power of two", p)
	case s.H%p != 0:
		return fmt.Errorf("smoothing: height %d not divisible by p=%d", s.H, p)
	case s.Mode != Serial && p > 2 && s.H/p < 1:
		return fmt.Errorf("smoothing: empty strips")
	}
	return nil
}

func (s Spec) p() int {
	if s.Mode == Serial {
		return 1
	}
	return s.P
}

// Layout is the per-PE memory map: the input strip with its two halo
// rows contiguous above and below it, then the output strip, then the
// per-PE neighbour line numbers.
type Layout struct {
	H, W, P  int
	Rows     int    // strip rows per PE (H/p)
	RowBytes uint32 // 2*W
	ImgBase  uint32 // (Rows+2) rows: halo-above, strip, halo-below
	OutBase  uint32 // Rows rows
	DestUp   uint32 // word: network line of PE i+1 (mod p)
	DestDown uint32 // word: network line of PE i-1 (mod p)
	End      uint32
}

// NewLayout computes the map.
func NewLayout(h, w, p int) (Layout, error) {
	if p < 1 || h%p != 0 {
		return Layout{}, fmt.Errorf("smoothing: bad layout h=%d p=%d", h, p)
	}
	l := Layout{H: h, W: w, P: p, Rows: h / p, RowBytes: uint32(2 * w)}
	l.ImgBase = 0x1000
	l.OutBase = l.ImgBase + uint32(l.Rows+2)*l.RowBytes
	l.DestUp = l.OutBase + uint32(l.Rows)*l.RowBytes
	l.DestDown = l.DestUp + 2
	l.End = l.DestDown + 2
	return l, nil
}

// MemBytes returns the PE memory size needed.
func (l Layout) MemBytes() uint32 {
	need := l.End + 4096
	size := uint32(1 << 12)
	for size < need {
		size <<= 1
	}
	return size
}

func (l Layout) equs() string {
	return fmt.Sprintf(`	.equ W, %d
	.equ ROWS, %d
	.equ ROWBYTES, %d
	.equ IMG, $%X
	.equ STRIP, $%X
	.equ LASTROW, $%X
	.equ HALOBOT, $%X
	.equ OUT, $%X
	.equ DESTUP, $%X
	.equ DESTDN, $%X
	.equ NETX, $%X
	.equ SIMDSPACE, $%X
	.equ RELEASE, %d
`, l.W, l.Rows, l.RowBytes,
		l.ImgBase,
		l.ImgBase+l.RowBytes,
		l.ImgBase+uint32(l.Rows)*l.RowBytes,
		l.ImgBase+uint32(l.Rows+1)*l.RowBytes,
		l.OutBase, l.DestUp, l.DestDown,
		pasm.AddrNetXmit, pasm.AddrSIMDSpace, pasm.NetCtrlRelease)
}

// Generate emits the assembly for a spec.
func Generate(spec Spec) (string, error) {
	if err := spec.Validate(); err != nil {
		return "", err
	}
	l, err := NewLayout(spec.H, spec.W, spec.p())
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "; smoothing %s %dx%d p=%d (generated)\n", spec.Mode, spec.H, spec.W, spec.p())
	b.WriteString(l.equs())
	if spec.Mode == SIMD {
		genSIMD(&b, spec)
	} else {
		genMIMD(&b, spec)
	}
	return b.String(), nil
}

// Build generates and assembles.
func Build(spec Spec) (*m68k.Program, Layout, error) {
	src, err := Generate(spec)
	if err != nil {
		return nil, Layout{}, err
	}
	l, err := NewLayout(spec.H, spec.W, spec.p())
	if err != nil {
		return nil, Layout{}, err
	}
	prog, err := m68k.Assemble(src)
	if err != nil {
		return nil, Layout{}, fmt.Errorf("smoothing: generated program does not assemble: %w", err)
	}
	return prog, l, nil
}

// localHalo emits the p=1 halo fill: cyclic wrap within the PE.
func localHalo(b *strings.Builder) {
	b.WriteString(`	; p=1: halos wrap locally (torus)
	lea	LASTROW, a0
	lea	IMG, a1
	move.w	#W-1, d6
hup:	move.w	(a0)+, (a1)+
	dbra	d6, hup
	lea	STRIP, a0
	lea	HALOBOT, a1
	move.w	#W-1, d6
hdn:	move.w	(a0)+, (a1)+
	dbra	d6, hdn
`)
}

// xferRow emits one exchange phase for the MIMD variants: release the
// held circuit, establish the phase's circuit (which blocks while the
// destination line is claimed by the previous phase — the
// phase-ordering handshake described in the package comment), then
// stream W pixels with the byte-pair protocol.
func xferRow(b *strings.Builder, spec Spec, ph, destVar, srcAddr, dstAddr string) {
	fmt.Fprintf(b, "\t; exchange phase %s\n\tmove.w\t#RELEASE, 8(a5)\n", ph)
	if spec.Mode == SMIMD {
		b.WriteString("\tmove.w\tSIMDSPACE, d3\t; all released, all phase data drained\n")
	}
	fmt.Fprintf(b, `	move.w	%s, d0
	move.w	d0, 8(a5)	; establish circuit (blocks on transient conflicts)
	lea	%s, a0
	lea	%s, a1
	move.w	#W-1, d6
x%s:	move.w	(a0)+, d0
`, destVar, srcAddr, dstAddr, ph)
	if spec.Mode == MIMD {
		fmt.Fprintf(b, `t%s1:	tst.w	4(a5)
	beq	t%s1
	move.b	d0, (a5)
r%s1:	tst.w	6(a5)
	beq	r%s1
	move.b	2(a5), d1
	lsr.w	#8, d0
t%s2:	tst.w	4(a5)
	beq	t%s2
	move.b	d0, (a5)
r%s2:	tst.w	6(a5)
	beq	r%s2
	move.b	2(a5), d0
`, ph, ph, ph, ph, ph, ph, ph, ph)
	} else {
		b.WriteString(`	move.w	SIMDSPACE, d3
	move.b	d0, (a5)
	move.w	SIMDSPACE, d3
	move.b	2(a5), d1
	lsr.w	#8, d0
	move.w	SIMDSPACE, d3
	move.b	d0, (a5)
	move.w	SIMDSPACE, d3
	move.b	2(a5), d0
`)
	}
	fmt.Fprintf(b, `	lsl.w	#8, d0
	move.b	d1, d0
	move.w	d0, (a1)+
	dbra	d6, x%s
`, ph)
}

// kernel emits the per-row 3x3 mean: copy the edge columns through,
// compute the interior with a0/a2 trailing one column behind the
// centre pointer a1 so all nine taps sit at small displacements.
func kernel(b *strings.Builder) {
	b.WriteString(`	.region mult
	lea	IMG, a0		; above row (halo first)
	lea	STRIP, a1	; centre row
	lea	STRIP+ROWBYTES, a2	; below row
	lea	OUT, a3
	move.w	#ROWS-1, d5
rloop:	move.w	(a1)+, (a3)+	; left edge copied through
	move.w	#W-3, d6
iloop:	moveq	#0, d0
	add.w	(a0), d0
	add.w	2(a0), d0
	add.w	4(a0), d0
	add.w	-2(a1), d0
	add.w	(a1), d0
	add.w	2(a1), d0
	add.w	(a2), d0
	add.w	2(a2), d0
	add.w	4(a2), d0
	divu.w	d7, d0		; quotient-dependent time: this domain's MULU analogue
	move.w	d0, (a3)+
	addq.l	#2, a0
	addq.l	#2, a1
	addq.l	#2, a2
	dbra	d6, iloop
	move.w	(a1)+, (a3)+	; right edge copied through
	addq.l	#4, a0
	addq.l	#4, a2
	dbra	d5, rloop
`)
}

// genMIMD emits the Serial/MIMD/SMIMD program (all loops on the PE).
func genMIMD(b *strings.Builder, spec Spec) {
	b.WriteString(`	.region other
	lea	NETX, a5
	moveq	#9, d7
	.region comm
`)
	if spec.p() == 1 {
		localHalo(b)
	} else {
		// Phase a: send my LAST strip row to PE i+1, receiving PE
		// i-1's into my halo-above. Phase b: the reverse direction.
		xferRow(b, spec, "a", "DESTUP", "LASTROW", "IMG")
		xferRow(b, spec, "b", "DESTDN", "STRIP", "HALOBOT")
		b.WriteString("\tmove.w\t#RELEASE, 8(a5)\n")
	}
	kernel(b)
	b.WriteString("\t.region other\n\thalt\n")
}

// genSIMD emits the MC control program plus the PE broadcast blocks.
// Lockstep makes the exchange phases trivially safe: every PE finishes
// the phase-a transfer instruction before any PE reaches phase b.
func genSIMD(b *strings.Builder, spec Spec) {
	p := spec.p()
	b.WriteString("\t.region control\n\tbcast\tinit\n")
	if p == 1 {
		b.WriteString(`	bcast	hupinit
	move.w	#W-1, d0
mh1:	bcast	hstep
	dbra	d0, mh1
	bcast	hdninit
	move.w	#W-1, d0
mh2:	bcast	hstep
	dbra	d0, mh2
`)
	} else {
		for _, ph := range []string{"a", "b"} {
			fmt.Fprintf(b, `	bcast	rel
	bcast	conn%s
	move.w	#W-1, d0
mx%s:	bcast	xfer
	dbra	d0, mx%s
`, ph, ph, ph)
		}
		b.WriteString("\tbcast\trel\n")
	}
	b.WriteString(`	bcast	rowinit
	move.w	#ROWS-1, d5
mrow:	bcast	ledge
	move.w	#W-3, d6
mpix:	bcast	pixel
	dbra	d6, mpix
	bcast	redge
	dbra	d5, mrow
	halt

	.region other
	.block	init
	lea	NETX, a5
	moveq	#9, d7
	.endblock
`)
	if p == 1 {
		b.WriteString(`
	.region comm
	.block	hupinit
	lea	LASTROW, a0
	lea	IMG, a1
	.endblock
	.block	hdninit
	lea	STRIP, a0
	lea	HALOBOT, a1
	.endblock
	.block	hstep
	move.w	(a0)+, (a1)+
	.endblock
`)
	} else {
		b.WriteString(`
	.region comm
	.block	rel
	move.w	#RELEASE, 8(a5)
	.endblock
	.block	conna
	move.w	DESTUP, d0
	move.w	d0, 8(a5)
	lea	LASTROW, a0
	lea	IMG, a1
	.endblock
	.block	connb
	move.w	DESTDN, d0
	move.w	d0, 8(a5)
	lea	STRIP, a0
	lea	HALOBOT, a1
	.endblock
	.block	xfer
	move.w	(a0)+, d0
	move.b	d0, (a5)
	move.b	2(a5), d1
	lsr.w	#8, d0
	move.b	d0, (a5)
	move.b	2(a5), d0
	lsl.w	#8, d0
	move.b	d1, d0
	move.w	d0, (a1)+
	.endblock
`)
	}
	b.WriteString(`
	.region mult
	.block	rowinit
	lea	IMG, a0
	lea	STRIP, a1
	lea	STRIP+ROWBYTES, a2
	lea	OUT, a3
	.endblock
	.block	ledge
	move.w	(a1)+, (a3)+
	.endblock
	.block	pixel
	moveq	#0, d0
	add.w	(a0), d0
	add.w	2(a0), d0
	add.w	4(a0), d0
	add.w	-2(a1), d0
	add.w	(a1), d0
	add.w	2(a1), d0
	add.w	(a2), d0
	add.w	2(a2), d0
	add.w	4(a2), d0
	divu.w	d7, d0
	move.w	d0, (a3)+
	addq.l	#2, a0
	addq.l	#2, a1
	addq.l	#2, a2
	.endblock
	.block	redge
	move.w	(a1)+, (a3)+
	addq.l	#4, a0
	addq.l	#4, a2
	.endblock
`)
}
