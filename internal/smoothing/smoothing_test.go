package smoothing

import (
	"testing"

	"repro/internal/pasm"
)

func testConfig() pasm.Config {
	cfg := pasm.DefaultConfig()
	cfg.PEMemBytes = 1 << 16
	return cfg
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{H: 8, W: 2, P: 4, Mode: MIMD},
		{H: 0, W: 8, P: 4, Mode: MIMD},
		{H: 8, W: 8, P: 3, Mode: MIMD},
		{H: 6, W: 8, P: 4, Mode: MIMD},
		{H: 8, W: 9000, P: 4, Mode: MIMD},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("%+v accepted", s)
		}
	}
	if err := (Spec{H: 16, W: 16, P: 4, Mode: SIMD}).Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

func TestReferenceProperties(t *testing.T) {
	// A constant image smooths to itself (255*9/9 = 255).
	img := NewImage(8, 8)
	for r := range img {
		for c := range img[r] {
			img[r][c] = 200
		}
	}
	out := Reference(img)
	if !Equal(out, img) {
		t.Error("constant image changed under mean filter")
	}
	// Edges are copied through.
	img2 := RandomImage(8, 8, 3)
	out2 := Reference(img2)
	for r := 0; r < 8; r++ {
		if out2[r][0] != img2[r][0] || out2[r][7] != img2[r][7] {
			t.Fatalf("row %d: edges not copied", r)
		}
	}
}

func TestGenerateAssembles(t *testing.T) {
	for _, mode := range []Mode{Serial, SIMD, MIMD, SMIMD} {
		for _, tc := range []struct{ h, w, p int }{{8, 8, 4}, {16, 8, 8}, {4, 16, 2}, {8, 8, 1}} {
			spec := Spec{H: tc.h, W: tc.w, P: tc.p, Mode: mode}
			if _, _, err := Build(spec); err != nil {
				t.Errorf("%s %dx%d p=%d: %v", mode, tc.h, tc.w, tc.p, err)
			}
		}
	}
}

// verify runs a spec and compares with the host reference.
func verify(t *testing.T, spec Spec, seed uint32) pasm.RunResult {
	t.Helper()
	img := RandomImage(spec.H, spec.W, seed)
	res, out, err := Execute(testConfig(), spec, img)
	if err != nil {
		t.Fatalf("%s h=%d w=%d p=%d: %v", spec.Mode, spec.H, spec.W, spec.P, err)
	}
	if want := Reference(img); !Equal(out, want) {
		t.Fatalf("%s h=%d w=%d p=%d: wrong image", spec.Mode, spec.H, spec.W, spec.P)
	}
	return res
}

func TestSerialCorrect(t *testing.T) {
	verify(t, Spec{H: 8, W: 8, Mode: Serial}, 10)
	verify(t, Spec{H: 4, W: 12, Mode: Serial}, 11)
}

func TestMIMDCorrect(t *testing.T) {
	for _, tc := range []struct{ h, w, p int }{{8, 8, 2}, {8, 8, 4}, {16, 8, 8}, {16, 8, 16}, {8, 8, 1}} {
		verify(t, Spec{H: tc.h, W: tc.w, P: tc.p, Mode: MIMD}, uint32(tc.h*tc.p))
	}
}

func TestSMIMDCorrect(t *testing.T) {
	for _, tc := range []struct{ h, w, p int }{{8, 8, 4}, {16, 8, 8}, {16, 16, 4}} {
		verify(t, Spec{H: tc.h, W: tc.w, P: tc.p, Mode: SMIMD}, uint32(tc.h+tc.w))
	}
}

func TestSIMDCorrect(t *testing.T) {
	for _, tc := range []struct{ h, w, p int }{{8, 8, 2}, {8, 8, 4}, {16, 8, 8}, {16, 8, 16}, {8, 8, 1}} {
		verify(t, Spec{H: tc.h, W: tc.w, P: tc.p, Mode: SIMD}, uint32(3*tc.h+tc.p))
	}
}

func TestAllModesAgree(t *testing.T) {
	img := RandomImage(16, 12, 99)
	var first Image
	for _, spec := range []Spec{
		{H: 16, W: 12, Mode: Serial},
		{H: 16, W: 12, P: 4, Mode: SIMD},
		{H: 16, W: 12, P: 4, Mode: MIMD},
		{H: 16, W: 12, P: 4, Mode: SMIMD},
	} {
		_, out, err := Execute(testConfig(), spec, img)
		if err != nil {
			t.Fatalf("%s: %v", spec.Mode, err)
		}
		if first == nil {
			first = out
		} else if !Equal(first, out) {
			t.Errorf("%s disagrees with serial output", spec.Mode)
		}
	}
}

func TestReconfigurationCounts(t *testing.T) {
	// Each PE establishes two circuits at run time (one per exchange
	// phase).
	res := verify(t, Spec{H: 8, W: 8, P: 4, Mode: MIMD}, 5)
	if res.NetReconfigs != 8 {
		t.Errorf("reconfigs = %d, want 8 (2 per PE)", res.NetReconfigs)
	}
	// Two rows of W pixels exchanged per PE, two bytes each.
	if want := int64(2 * 2 * 8 * 4); res.NetTransfers != want {
		t.Errorf("transfers = %d, want %d", res.NetTransfers, want)
	}
}

func TestSIMDBeatsMIMDAtPlainKernel(t *testing.T) {
	// As with one-multiply matrix multiplication, SIMD's hidden
	// control flow and faster fetch win at this kernel size.
	img := RandomImage(16, 16, 21)
	spec := Spec{H: 16, W: 16, P: 4}
	spec.Mode = SIMD
	rs, _, err := Execute(testConfig(), spec, img)
	if err != nil {
		t.Fatal(err)
	}
	spec.Mode = MIMD
	rm, _, err := Execute(testConfig(), spec, img)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Cycles >= rm.Cycles {
		t.Errorf("SIMD (%d) not faster than MIMD (%d)", rs.Cycles, rm.Cycles)
	}
}

func TestDeterministic(t *testing.T) {
	img := RandomImage(8, 8, 77)
	spec := Spec{H: 8, W: 8, P: 4, Mode: SMIMD}
	r1, _, err := Execute(testConfig(), spec, img)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := Execute(testConfig(), spec, img)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cycles != r2.Cycles {
		t.Errorf("non-deterministic: %d vs %d", r1.Cycles, r2.Cycles)
	}
}
