// Package stats provides the performance metrics the paper reports:
// speed-up, efficiency (speed-up over PE count, which exceeds 1 under
// the paper's "superlinear" SIMD conditions), MIPS, and simple series
// helpers used by the experiment tables.
package stats

import (
	"fmt"
	"math"
)

// Speedup is T_serial / T_parallel.
func Speedup(serialCycles, parallelCycles int64) float64 {
	if parallelCycles <= 0 {
		return math.NaN()
	}
	return float64(serialCycles) / float64(parallelCycles)
}

// Efficiency is the paper's Section 10 definition: speed-up divided by
// the number of PEs employed. SIMD mode can exceed 1 because the MCs'
// control-flow work and the Fetch Unit's faster instruction delivery
// are not counted in p.
func Efficiency(serialCycles, parallelCycles int64, p int) float64 {
	if p <= 0 {
		return math.NaN()
	}
	return Speedup(serialCycles, parallelCycles) / float64(p)
}

// MIPS converts cycles-per-instruction at a clock rate into millions
// of instructions per second (paper Table 1).
func MIPS(cycles, instrs int64, clockHz float64) float64 {
	if cycles <= 0 || instrs <= 0 {
		return math.NaN()
	}
	cyclesPerInstr := float64(cycles) / float64(instrs)
	return clockHz / cyclesPerInstr / 1e6
}

// Seconds converts cycles to seconds.
func Seconds(cycles int64, clockHz float64) float64 {
	return float64(cycles) / clockHz
}

// Ratio returns a/b, guarding zero.
func Ratio(a, b int64) float64 {
	if b == 0 {
		return math.NaN()
	}
	return float64(a) / float64(b)
}

// Crossover locates, by linear interpolation, the x at which series y1
// and y2 cross (y1-y2 changes sign). It returns NaN if they never
// cross. The series must share the x grid and be ordered by x.
func Crossover(xs []int, y1, y2 []int64) float64 {
	if len(xs) != len(y1) || len(xs) != len(y2) {
		return math.NaN()
	}
	for i := 1; i < len(xs); i++ {
		d0 := float64(y1[i-1] - y2[i-1])
		d1 := float64(y1[i] - y2[i])
		if d0 == 0 {
			return float64(xs[i-1])
		}
		if d0*d1 < 0 {
			t := d0 / (d0 - d1)
			return float64(xs[i-1]) + t*float64(xs[i]-xs[i-1])
		}
	}
	if len(xs) > 0 && y1[len(xs)-1] == y2[len(xs)-1] {
		return float64(xs[len(xs)-1])
	}
	return math.NaN()
}

// FormatCycles renders a cycle count with its time at the given clock.
func FormatCycles(cycles int64, clockHz float64) string {
	return fmt.Sprintf("%d (%.4fs)", cycles, Seconds(cycles, clockHz))
}

// Jain returns Jain's fairness index over a set of per-entity
// allocations (throughputs, completed-request counts, ...):
//
//	J = (sum x)^2 / (n * sum x^2)
//
// J is 1 when every entity gets an identical share and approaches 1/n
// when one entity takes everything. Entries must be non-negative; an
// empty or all-zero set returns NaN (fairness of nothing is
// undefined).
func Jain(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumSq float64
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return math.NaN()
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}
