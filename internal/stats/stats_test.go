package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSpeedupAndEfficiency(t *testing.T) {
	if got := Speedup(800, 100); got != 8 {
		t.Errorf("Speedup = %v", got)
	}
	if got := Efficiency(800, 100, 8); got != 1 {
		t.Errorf("Efficiency = %v", got)
	}
	if got := Efficiency(900, 100, 8); got <= 1 {
		t.Errorf("superlinear efficiency = %v, want > 1", got)
	}
	if !math.IsNaN(Speedup(100, 0)) {
		t.Error("Speedup with zero parallel time not NaN")
	}
	if !math.IsNaN(Efficiency(1, 1, 0)) {
		t.Error("Efficiency with zero PEs not NaN")
	}
}

func TestMIPS(t *testing.T) {
	// 4 cycles/instruction at 8 MHz = 2 MIPS.
	if got := MIPS(400, 100, 8e6); got != 2 {
		t.Errorf("MIPS = %v, want 2", got)
	}
	if !math.IsNaN(MIPS(0, 5, 8e6)) || !math.IsNaN(MIPS(5, 0, 8e6)) {
		t.Error("degenerate MIPS not NaN")
	}
}

func TestSeconds(t *testing.T) {
	if got := Seconds(8e6, 8e6); got != 1 {
		t.Errorf("Seconds = %v", got)
	}
}

func TestCrossover(t *testing.T) {
	xs := []int{1, 5, 10, 20}
	y1 := []int64{100, 220, 370, 670} // grows 30/x
	y2 := []int64{160, 240, 340, 540} // grows 20/x
	x := Crossover(xs, y1, y2)
	if x < 5 || x > 10 {
		t.Errorf("crossover at %v, want within (5,10)", x)
	}
	// No crossing.
	if !math.IsNaN(Crossover(xs, y1, y1)) {
		// equal series cross at the first point by convention
		t.Skip()
	}
}

func TestCrossoverNone(t *testing.T) {
	xs := []int{1, 2, 3}
	y1 := []int64{10, 20, 30}
	y2 := []int64{5, 15, 25}
	if !math.IsNaN(Crossover(xs, y1, y2)) {
		t.Error("non-crossing series returned a crossover")
	}
}

func TestCrossoverExactEndpoint(t *testing.T) {
	xs := []int{1, 2}
	y1 := []int64{10, 30}
	y2 := []int64{20, 30}
	if got := Crossover(xs, y1, y2); got != 2 {
		t.Errorf("crossover = %v, want 2", got)
	}
}

func TestCrossoverMismatchedLengths(t *testing.T) {
	if !math.IsNaN(Crossover([]int{1}, []int64{1, 2}, []int64{1})) {
		t.Error("mismatched lengths accepted")
	}
}

// Property: efficiency times p equals speed-up.
func TestEfficiencyProperty(t *testing.T) {
	f := func(s, par uint32, p uint8) bool {
		if par == 0 || p == 0 {
			return true
		}
		e := Efficiency(int64(s), int64(par), int(p))
		sp := Speedup(int64(s), int64(par))
		return math.Abs(e*float64(p)-sp) < 1e-9*math.Max(1, sp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(3, 2); got != 1.5 {
		t.Errorf("Ratio(3,2) = %v, want 1.5", got)
	}
	if !math.IsNaN(Ratio(1, 0)) {
		t.Error("Ratio with zero denominator should be NaN")
	}
}

func TestFormatCycles(t *testing.T) {
	if got := FormatCycles(8_000_000, 8e6); got != "8000000 (1.0000s)" {
		t.Errorf("FormatCycles = %q", got)
	}
}

func TestJain(t *testing.T) {
	if got := Jain([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: J = %v, want 1", got)
	}
	// One entity takes everything: J = 1/n.
	if got := Jain([]float64{9, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Errorf("single taker: J = %v, want 1/3", got)
	}
	if !math.IsNaN(Jain(nil)) || !math.IsNaN(Jain([]float64{0, 0})) {
		t.Error("empty / all-zero sets should be NaN")
	}
}

// Property: J is scale-invariant and bounded by [1/n, 1].
func TestJainProperty(t *testing.T) {
	f := func(raw []uint16, scale uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		nonzero := false
		for i, v := range raw {
			xs[i] = float64(v)
			nonzero = nonzero || v != 0
		}
		if !nonzero {
			return true
		}
		j := Jain(xs)
		if j < 1/float64(len(xs))-1e-12 || j > 1+1e-12 {
			return false
		}
		k := float64(scale) + 1
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * k
		}
		return math.Abs(Jain(scaled)-j) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
