package model

import "testing"

// TestCellCyclesRanking: the predictor's one job is to rank requests
// the way the simulator would — bigger n costs more, more multiplies
// cost more, a short probe is orders of magnitude under a big sweep.
func TestCellCyclesRanking(t *testing.T) {
	m := PrototypeMachine()

	small := m.CellCycles("simd", 8, 4, 1)
	big := m.CellCycles("simd", 64, 16, 1)
	if small <= 0 || big <= 0 {
		t.Fatalf("non-positive predictions: small=%g big=%g", small, big)
	}
	if big < 50*small {
		t.Errorf("n=64 sweep predicted %.0f cycles, n=8 probe %.0f: want ~n^3/p scaling (>=50x)", big, small)
	}

	one := m.CellCycles("mimd", 16, 4, 1)
	four := m.CellCycles("mimd", 16, 4, 4)
	if four <= 2*one {
		t.Errorf("muls=4 predicted %.0f, muls=1 %.0f: want multiply work to scale", four, one)
	}

	// Serial has no communication term and p=1 compute.
	if got := m.CellCycles("sisd", 16, 8, 1); got != m.CellCycles("serial", 16, 1, 1) {
		t.Errorf("sisd with p=8 should normalize to serial p=1: %g", got)
	}
}

// TestCellCyclesModes: S/MIMD pays the barrier protocol on top of
// MIMD-style compute, and every mode is positive and finite.
func TestCellCyclesModes(t *testing.T) {
	m := PrototypeMachine()
	var last float64
	for _, mode := range []string{"sisd", "simd", "mimd", "smimd", "mixed"} {
		c := m.CellCycles(mode, 32, 16, 1)
		if c <= 0 {
			t.Fatalf("mode %s predicted %.0f cycles", mode, c)
		}
		last = c
	}
	_ = last
	smimd := m.CellCycles("smimd", 32, 16, 1)
	mimd := m.CellCycles("mimd", 32, 16, 1)
	if smimd <= mimd {
		t.Errorf("smimd (%.0f) should cost more than mimd (%.0f): barrier protocol", smimd, mimd)
	}
}

// TestCellCyclesDegenerate: hostile parameters clamp instead of
// dividing by zero or going negative.
func TestCellCyclesDegenerate(t *testing.T) {
	m := PrototypeMachine()
	if got := m.CellCycles("simd", 0, 0, 0); got != 0 {
		t.Errorf("n=0 should cost 0, got %g", got)
	}
	if got := m.CellCycles("weird", 8, -3, -1); got <= 0 {
		t.Errorf("clamped degenerate cell should still cost > 0, got %g", got)
	}
	// More PEs than columns: the per-PE column count clamps to 1.
	if got := m.CellCycles("simd", 8, 16, 1); got <= 0 {
		t.Errorf("p > n cell should still cost > 0, got %g", got)
	}
	// Unknown mode on a parallel machine costs like simd.
	if got, want := m.CellCycles("weird", 32, 8, 1), m.CellCycles("simd", 32, 8, 1); got != want {
		t.Errorf("unknown mode predicted %g, want the simd cost %g", got, want)
	}
}
