package model

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/m68k"
	"repro/internal/prng"
)

func TestTSimdTMimdSmall(t *testing.T) {
	// Two PEs, two instructions: SIMD charges both maxima, MIMD the
	// larger column sum.
	times := [][]int64{
		{70, 38},
		{38, 70},
	}
	if got := TSimd(times); got != 140 {
		t.Errorf("TSimd = %d, want 140", got)
	}
	if got := TMimd(times); got != 108 {
		t.Errorf("TMimd = %d, want 108", got)
	}
}

// Property: the paper's inequality T_MIMD <= T_SIMD for any
// instruction time matrix.
func TestMimdNeverSlowerThanSimd(t *testing.T) {
	f := func(seed uint32, jRaw, kRaw uint8) bool {
		j := int(jRaw%20) + 1
		k := int(kRaw%8) + 1
		g := prng.New(seed)
		times := make([][]int64, j)
		for i := range times {
			times[i] = make([]int64, k)
			for c := range times[i] {
				times[i][c] = int64(g.Uint16()%100) + 1
			}
		}
		return TMimd(times) <= TSimd(times)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestTSimdEqualWhenDeterministic(t *testing.T) {
	// With identical per-PE times the two equations coincide.
	times := [][]int64{{5, 5, 5}, {7, 7, 7}, {3, 3, 3}}
	if TSimd(times) != TMimd(times) {
		t.Errorf("deterministic times: TSimd %d != TMimd %d", TSimd(times), TMimd(times))
	}
}

func TestOnesPMFSums(t *testing.T) {
	pmf := onesPMF()
	sum := 0.0
	mean := 0.0
	for k, p := range pmf {
		sum += p
		mean += float64(k) * p
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("pmf sums to %v", sum)
	}
	if math.Abs(mean-8) > 1e-12 {
		t.Errorf("pmf mean = %v, want 8", mean)
	}
	// C(16,8)/65536 is the mode.
	if math.Abs(pmf[8]-12870.0/65536.0) > 1e-12 {
		t.Errorf("pmf[8] = %v", pmf[8])
	}
}

func TestMeanMaxOnes(t *testing.T) {
	if got := MeanMaxOnes(1); math.Abs(got-8) > 1e-9 {
		t.Errorf("MeanMaxOnes(1) = %v, want 8", got)
	}
	// Monotone in p, bounded by 16.
	prev := 0.0
	for p := 1; p <= 32; p *= 2 {
		v := MeanMaxOnes(p)
		if v <= prev || v > 16 {
			t.Errorf("MeanMaxOnes(%d) = %v not in (prev, 16]", p, v)
		}
		prev = v
	}
	// Against a Monte Carlo estimate for p=4.
	g := prng.New(99)
	const trials = 200000
	total := 0.0
	for i := 0; i < trials; i++ {
		m := int64(0)
		for k := 0; k < 4; k++ {
			c := int64(0)
			for v := g.Uint16(); v != 0; v &= v - 1 {
				c++
			}
			if c > m {
				m = c
			}
		}
		total += float64(m)
	}
	mc := total / trials
	if math.Abs(MeanMaxOnes(4)-mc) > 0.03 {
		t.Errorf("MeanMaxOnes(4) = %v, Monte Carlo %v", MeanMaxOnes(4), mc)
	}
}

func TestMeanMaxOnesAgainstMuluCycles(t *testing.T) {
	// The analytic mean MULU time must match the timing table averaged
	// over all 65536 multipliers.
	var total int64
	for v := 0; v < 1<<16; v++ {
		total += m68k.MuluCycles(uint16(v))
	}
	exact := float64(total) / 65536
	if math.Abs(MuluMeanCycles()-exact) > 1e-9 {
		t.Errorf("MuluMeanCycles = %v, exhaustive %v", MuluMeanCycles(), exact)
	}
}

func TestDecouplingGainGrowsWithP(t *testing.T) {
	prev := 0.0
	for _, p := range []int{2, 4, 8, 16} {
		g := DecouplingGainPerMul(p)
		if g <= prev {
			t.Errorf("gain(%d) = %v not increasing", p, g)
		}
		prev = g
	}
	// p=4 is about 3.3 cycles (the calibration analysis in
	// EXPERIMENTS.md).
	if g := DecouplingGainPerMul(4); g < 2.5 || g > 4.5 {
		t.Errorf("gain(4) = %v, expected around 3.3", g)
	}
}

func TestMeanMaxNormal(t *testing.T) {
	// Known values: E[max of p standard normals].
	cases := map[int]float64{1: 0, 2: 0.5642, 4: 1.0294, 8: 1.4236}
	for p, want := range cases {
		if got := MeanMaxNormal(p); math.Abs(got-want) > 0.002 {
			t.Errorf("MeanMaxNormal(%d) = %v, want %v", p, got, want)
		}
	}
}

func TestSyncExcess(t *testing.T) {
	if SyncExcessPerMul(1, 16) != 0 {
		t.Error("no sync excess for one PE")
	}
	// 4 * 1.0294 / 4 = 1.03 for p=4, cols=16 (the n=64, p=4 case).
	if got := SyncExcessPerMul(4, 16); math.Abs(got-1.029) > 0.01 {
		t.Errorf("SyncExcessPerMul(4,16) = %v, want ~1.03", got)
	}
	// Coarser granularity (more cols) shrinks the residual.
	if SyncExcessPerMul(4, 64) >= SyncExcessPerMul(4, 16) {
		t.Error("sync excess should shrink with cols")
	}
}

func TestPredictCrossoverMatchesPrototypeConfig(t *testing.T) {
	// The prototype-like machine parameters must predict the Figure 7
	// crossover near the simulator's measured ~13.3 multiplies.
	m := Machine{DRAMWaitStates: 1, RefreshPeriod: 256, RefreshStall: 2, BarrierExtra: 4, PEsPerMC: 4}
	x := m.PredictCrossover(64, 4)
	if x < 10 || x > 17 {
		t.Errorf("predicted crossover %v, simulator measures ~13.3", x)
	}
}

func TestPredictCrossoverInfWithoutVariation(t *testing.T) {
	// One PE: no variation to exploit, decoupling never wins.
	m := Machine{DRAMWaitStates: 1}
	if !math.IsInf(m.PredictCrossover(64, 1), 1) {
		t.Error("crossover with p=1 should be +Inf")
	}
}

func TestCrossoverGrowsWithP(t *testing.T) {
	// SIMD lockstep release is per MC group of 4, so its per-multiply
	// worst case stops growing at p=4, while S/MIMD's partition-wide
	// barrier residual keeps growing as cols = n/p shrinks: at fixed
	// n the crossover moves later with p (the simulator measures
	// ~13.3 at p=4, ~20 at p=8, none by 32 multiplies at p=16).
	m := Machine{DRAMWaitStates: 1, RefreshPeriod: 256, RefreshStall: 2, BarrierExtra: 4, PEsPerMC: 4}
	x4 := m.PredictCrossover(64, 4)
	x8 := m.PredictCrossover(64, 8)
	x16 := m.PredictCrossover(64, 16)
	if !(x4 < x8 && x8 < x16) {
		t.Errorf("crossovers not increasing with p: %v, %v, %v", x4, x8, x16)
	}
	if x4 < 10 || x4 > 17 {
		t.Errorf("crossover(p=4) = %v, want ~13", x4)
	}
	if x8 < 16 || x8 > 26 {
		t.Errorf("crossover(p=8) = %v, want ~20", x8)
	}
}

func TestSdMaxOnes(t *testing.T) {
	// sd of a single draw is sqrt(16 * 1/4) = 2; taking maxima
	// narrows the distribution.
	if got := SdMaxOnes(1); math.Abs(got-2) > 1e-9 {
		t.Errorf("SdMaxOnes(1) = %v, want 2", got)
	}
	if SdMaxOnes(4) >= SdMaxOnes(1) {
		t.Error("max of several draws should have smaller sd")
	}
}

func TestOperationCounts(t *testing.T) {
	if Multiplies(64, 4) != 65536 {
		t.Errorf("Multiplies(64,4) = %d", Multiplies(64, 4))
	}
	if NetOps(8) != 128 {
		t.Errorf("NetOps(8) = %d", NetOps(8))
	}
	if NetBytesTotal(8, 4) != 512 {
		t.Errorf("NetBytesTotal(8,4) = %d", NetBytesTotal(8, 4))
	}
	if NetBytesTotal(8, 1) != 0 {
		t.Error("single PE should move no bytes")
	}
	if Barriers(8, 4) != 256 {
		t.Errorf("Barriers(8,4) = %d", Barriers(8, 4))
	}
	if Barriers(8, 1) != 0 {
		t.Error("single PE needs no barriers")
	}
}
