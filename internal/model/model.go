// Package model implements the paper's analytic timing equations and
// closed-form predictions, used to cross-validate the simulator:
//
// Section 5.2 defines, for K PEs each executing J instructions with
// instruction j on PE k taking time T[j][k]:
//
//	T_SIMD = sum over j of max over k of T[j][k]   (lockstep: every
//	         instruction costs the worst case)
//	T_MIMD = max over k of sum over j of T[j][k]   (asynchronous: the
//	         maximum is taken once, over whole streams)
//
// and in general T_MIMD <= T_SIMD.
//
// The data-dependent MULU time 38 + 2*ones(multiplier) with uniform
// 16-bit multipliers makes ones ~ Binomial(16, 1/2), from which the
// expected per-multiply decoupling gain 2*(E[max_p ones] - 8) and the
// Figure 7 crossover location follow.
package model

import "math"

// TSimd evaluates the paper's SIMD time equation for an instruction
// time matrix t[j][k] (instruction j, PE k).
func TSimd(t [][]int64) int64 {
	var total int64
	for _, row := range t {
		var m int64
		for _, v := range row {
			if v > m {
				m = v
			}
		}
		total += m
	}
	return total
}

// TMimd evaluates the paper's MIMD time equation for t[j][k].
func TMimd(t [][]int64) int64 {
	if len(t) == 0 {
		return 0
	}
	var m int64
	for k := range t[0] {
		var sum int64
		for j := range t {
			sum += t[j][k]
		}
		if sum > m {
			m = sum
		}
	}
	return m
}

// onesPMF returns the Binomial(16, 1/2) probability mass function of
// the number of 1 bits in a uniform 16-bit value.
func onesPMF() [17]float64 {
	var pmf [17]float64
	// C(16,k) / 2^16
	c := 1.0
	for k := 0; k <= 16; k++ {
		pmf[k] = c / 65536.0
		c = c * float64(16-k) / float64(k+1)
	}
	return pmf
}

// MeanOnes is E[ones] for a uniform 16-bit multiplier: exactly 8.
func MeanOnes() float64 { return 8 }

// MeanMaxOnes returns E[max of p independent ones-counts], the
// expected worst case the SIMD lockstep charges per multiply across p
// PEs.
func MeanMaxOnes(p int) float64 {
	if p < 1 {
		return math.NaN()
	}
	pmf := onesPMF()
	// CDF
	var cdf [17]float64
	acc := 0.0
	for k := 0; k <= 16; k++ {
		acc += pmf[k]
		cdf[k] = acc
	}
	e := 0.0
	prev := 0.0
	for k := 0; k <= 16; k++ {
		fk := math.Pow(cdf[k], float64(p))
		e += float64(k) * (fk - prev)
		prev = fk
	}
	return e
}

// SdMaxOnes returns the standard deviation of the maximum of p
// independent ones-counts — the residual per-instruction variability
// a lockstep group of p PEs still exhibits, which couples MC groups
// through the network in multi-group SIMD partitions.
func SdMaxOnes(p int) float64 {
	if p < 1 {
		return math.NaN()
	}
	pmf := onesPMF()
	var cdf [17]float64
	acc := 0.0
	for k := 0; k <= 16; k++ {
		acc += pmf[k]
		cdf[k] = acc
	}
	mean, m2 := 0.0, 0.0
	prev := 0.0
	for k := 0; k <= 16; k++ {
		fk := math.Pow(cdf[k], float64(p))
		pk := fk - prev
		mean += float64(k) * pk
		m2 += float64(k) * float64(k) * pk
		prev = fk
	}
	return math.Sqrt(m2 - mean*mean)
}

// MuluMeanCycles is the expected MULU time for uniform multipliers:
// 38 + 2*E[ones] = 54.
func MuluMeanCycles() float64 { return 38 + 2*MeanOnes() }

// MuluMaxMeanCycles is the expected lockstep (per-instruction maximum
// over p PEs) MULU time.
func MuluMaxMeanCycles(p int) float64 { return 38 + 2*MeanMaxOnes(p) }

// DecouplingGainPerMul is the expected cycles an asynchronously
// executed multiply saves over its lockstep execution: the difference
// between the per-instruction maximum and the PE's own expected time.
func DecouplingGainPerMul(p int) float64 {
	return MuluMaxMeanCycles(p) - MuluMeanCycles()
}

// MeanMaxNormal returns E[max of p independent standard normal
// variables], computed by numeric integration of
// integral of x * p * phi(x) * Phi(x)^(p-1) dx. It appears in the
// barrier-granularity term below: per-synchronization-interval sums of
// many instruction times are approximately normal, and the critical
// path charges their maximum over the p PEs once per interval.
func MeanMaxNormal(p int) float64 {
	if p < 1 {
		return math.NaN()
	}
	if p == 1 {
		return 0
	}
	const (
		lo, hi = -8.0, 8.0
		steps  = 8000
	)
	h := (hi - lo) / steps
	sum := 0.0
	for i := 0; i <= steps; i++ {
		x := lo + float64(i)*h
		phi := math.Exp(-x*x/2) / math.Sqrt(2*math.Pi)
		Phi := 0.5 * (1 + math.Erf(x/math.Sqrt2))
		f := x * float64(p) * phi * math.Pow(Phi, float64(p-1))
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * f
	}
	return sum * h
}

// Machine captures the timing parameters the crossover prediction
// needs (a subset of pasm.Config, kept dependency-free).
type Machine struct {
	DRAMWaitStates float64 // extra cycles per DRAM access
	RefreshPeriod  float64 // cycles between charged refresh stalls (0 = off)
	RefreshStall   float64 // cycles per stall
	BarrierExtra   float64 // mode-switch cycles per barrier read
	PEsPerMC       int     // SIMD lockstep group size (prototype: 4)
}

// groupSize returns the lockstep group size (SIMD instruction release
// is per MC group, not per partition).
func (m Machine) groupSize(p int) int {
	g := m.PEsPerMC
	if g <= 0 {
		g = 4
	}
	if p < g {
		return p
	}
	return g
}

// refreshFraction is the average slowdown DRAM refresh adds to
// continuously busy execution.
func (m Machine) refreshFraction() float64 {
	if m.RefreshPeriod <= 0 {
		return 0
	}
	return m.RefreshStall / (m.RefreshPeriod + m.RefreshStall)
}

// SyncExcessPerMul is the cycles per multiply the S/MIMD critical path
// still pays to worst-case charging at its own synchronization
// granularity. The PEs re-synchronize at every column rotation (each j
// step); within one j step each of the cols = n/p inner loops reuses
// one random multiplier for n*M multiplies, so the per-j compute time
// of PE k is a sum of cols scaled draws with standard deviation
// 2*sd(ones)*n*M*sqrt(cols) = 4nM*sqrt(cols), and the critical path
// charges E[max over p] of it once per j step:
//
//	excess/multiply = 4 * E[maxNormal(p)] / sqrt(cols)
//
// This term — invisible in the paper's own analysis — is why decoupled
// execution does not recover the full E[max]-E[own] gain: S/MIMD only
// coarsens the granularity of the maximum from one instruction to one
// synchronization interval.
func SyncExcessPerMul(p, cols int) float64 {
	if p <= 1 || cols < 1 {
		return 0
	}
	return 4 * MeanMaxNormal(p) / math.Sqrt(float64(cols))
}

// CrossGroupExcessPerMul is the cycles per multiply a multi-group SIMD
// partition pays on top of its within-group per-instruction maxima:
// the groups run the same stream but drift with the residual
// variability of their group maxima, and the network transfers at each
// rotation charge the cross-group maximum once per j step. The same
// algebra as SyncExcessPerMul applies with the per-draw deviation
// 2*sd(max-of-group ones) and the group count as the max arity.
func (m Machine) CrossGroupExcessPerMul(p, cols int) float64 {
	g := m.groupSize(p)
	groups := p / g
	if groups <= 1 || cols < 1 {
		return 0
	}
	return 2 * SdMaxOnes(g) * MeanMaxNormal(groups) / math.Sqrt(float64(cols))
}

// NetGainPerMul is the expected net cycles per added multiply by which
// the decoupled (S/MIMD) program closes on SIMD. SIMD's per-multiply
// cost is the within-GROUP maximum (instruction release is per MC
// group of PEsPerMC PEs) plus the cross-group residual; S/MIMD's is
// the PE's own expected time plus its DRAM fetch wait, refresh share,
// and the residual worst-case charging at barrier granularity across
// the whole partition.
func (m Machine) NetGainPerMul(p, cols int) float64 {
	return m.SIMDPerMul(p, cols) - m.SMIMDPerMul(p, cols)
}

// SIMDPerMul is the expected SIMD cycles per inner-loop multiply.
func (m Machine) SIMDPerMul(p, cols int) float64 {
	return MuluMaxMeanCycles(m.groupSize(p)) + m.CrossGroupExcessPerMul(p, cols)
}

// SMIMDPerMul is the expected S/MIMD cycles per inner-loop multiply.
func (m Machine) SMIMDPerMul(p, cols int) float64 {
	mimdPerMul := MuluMeanCycles() + m.DRAMWaitStates // 1-word fetch
	return mimdPerMul + m.refreshFraction()*mimdPerMul + SyncExcessPerMul(p, cols)
}

// CommDeltaPerTransfer is the extra communication cost S/MIMD pays per
// transferred element over SIMD: four barrier reads (a word move from
// the absolute SIMD-space address, 16 cycles, plus its instruction
// fetch waits and the mode-switch overhead), where SIMD's lockstep
// gives the same ordering for free.
func (m Machine) CommDeltaPerTransfer() float64 {
	const barrierReadCycles = 16 // move.w abs.l, dn
	const barrierReadWords = 3
	return 4 * (barrierReadCycles + m.DRAMWaitStates*barrierReadWords + m.BarrierExtra)
}

// SIMDAdvantagePerElement is SIMD's fixed per-inner-loop-element
// advantage over S/MIMD at one multiply per loop: the loop-control
// instruction hidden on the MC (a taken DBRA plus its fetch), the
// fetch wait states and refresh share of the loop body the queue does
// not pay, and the communication-protocol difference amortized over
// the p/n element-loop iterations per transferred element. bodyWords
// is the instruction words of the per-element body (3 for the plain
// kernel), bodyCycles its approximate execution time.
func (m Machine) SIMDAdvantagePerElement(bodyWords, bodyCycles float64, n, p int) float64 {
	const dbraTaken = 10
	const dbraWords = 2
	hiddenControl := dbraTaken + m.DRAMWaitStates*dbraWords
	fetchWaits := m.DRAMWaitStates * bodyWords
	refresh := m.refreshFraction() * (bodyCycles + hiddenControl)
	comm := 0.0
	if p > 1 && n > 0 {
		comm = m.CommDeltaPerTransfer() * float64(p) / float64(n)
	}
	return hiddenControl + fetchWaits + refresh + comm
}

// PredictCrossover returns the predicted Figure 7 crossover: the
// inner-loop multiply count at which T_SIMD = T_S/MIMD for the n x n
// matrix multiplication on p PEs. The plain kernel's body is
// 3 instructions/3 words costing about 74 cycles plus the multiply
// variation.
func (m Machine) PredictCrossover(n, p int) float64 {
	cols := 1
	if p > 0 {
		cols = n / p
	}
	g := m.NetGainPerMul(p, cols)
	if g <= 0 {
		return math.Inf(1) // decoupling never wins
	}
	return m.SIMDAdvantagePerElement(3, 74, n, p) / g
}

// Matmul operation counts (paper Section 4) -----------------------------

// Multiplies returns the multiply-accumulate count per PE: n^3/p.
func Multiplies(n, p int) int64 { return int64(n) * int64(n) * int64(n) / int64(p) }

// NetOps returns the network operations per PE: 2n^2 (two 8-bit
// transfers per 16-bit element, n elements per column, n rotations).
func NetOps(n int) int64 { return 2 * int64(n) * int64(n) }

// NetBytesTotal returns machine-wide delivered bytes: p * 2n^2.
func NetBytesTotal(n, p int) int64 {
	if p <= 1 {
		return 0
	}
	return int64(p) * NetOps(n)
}

// Barriers returns the S/MIMD barrier rounds: four per transferred
// element (before/after each byte's send), n^2 elements.
func Barriers(n, p int) int64 {
	if p <= 1 {
		return 0
	}
	return 4 * int64(n) * int64(n)
}
