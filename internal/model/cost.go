package model

// Closed-form request-cost prediction. A full simulation of an n=64
// matmul costs ~10^7 simulated cycles of host work; the Section 4
// algebra answers "roughly how many cycles will this cell take?" in
// nanoseconds. The serving stack uses these estimates as the
// shortest-job-first key of its class-aware scheduler: the estimate
// only has to rank jobs correctly (a table1 probe is ~10^5 cycles, an
// n=64 S/MIMD sweep ~10^7), not to match the simulator cycle-exact.
// The predictions are pure functions of the spec parameters, so a
// scheduler driven by them is deterministic under trace replay.

// Per-element inner-loop body outside the multiply itself (load,
// accumulate, store: ~3 instructions, see SIMDAdvantagePerElement's
// caller).
const bodyCyclesPerMul = 74.0

// netCyclesPerOp approximates one PE network operation (set route,
// send/recv one byte through the ESC): dominated by the device
// accesses, a few tens of cycles.
const netCyclesPerOp = 40.0

// CellCycles predicts the simulated cycles of one n x n matrix
// multiplication on p PEs with muls inner multiplies per element, in
// the named execution mode ("sisd"/"serial", "simd", "mimd", "smimd",
// "mixed" — unknown modes cost like simd, the middle of the range).
// The prediction composes the paper's per-multiply equations with the
// operation counts of Section 4.
func (m Machine) CellCycles(mode string, n, p, muls int) float64 {
	if n < 1 {
		return 0
	}
	if p < 1 {
		p = 1
	}
	if muls < 1 {
		muls = 1
	}
	cols := n / p
	if cols < 1 {
		cols = 1
	}
	serial := mode == "sisd" || mode == "serial" || p == 1
	if serial {
		p = 1
	}

	// Per-multiply compute cost by mode.
	var perMul float64
	switch {
	case serial:
		perMul = m.SMIMDPerMul(1, n) // own expected time + fetch/refresh share
	case mode == "simd":
		perMul = m.SIMDPerMul(p, cols)
	case mode == "mimd", mode == "smimd":
		perMul = m.SMIMDPerMul(p, cols)
	case mode == "mixed":
		perMul = (m.SIMDPerMul(p, cols) + m.SMIMDPerMul(p, cols)) / 2
	default:
		perMul = m.SIMDPerMul(p, cols)
	}

	mulWork := float64(Multiplies(n, p)*int64(muls)) * (perMul + bodyCyclesPerMul)

	// Communication: 2n^2 network ops per PE, plus the S/MIMD barrier
	// protocol's per-transfer overhead where it applies.
	var comm float64
	if p > 1 {
		comm = float64(NetOps(n)) * netCyclesPerOp
		if mode == "smimd" || mode == "mixed" {
			comm += float64(Barriers(n, p)) * m.CommDeltaPerTransfer() / 4
		}
	}
	return mulWork + comm
}

// PrototypeMachine returns the timing parameters of the simulated
// 1988 prototype (pasm.DefaultConfig's values, kept dependency-free
// here): the machine every cost prediction is evaluated against.
func PrototypeMachine() Machine {
	return Machine{
		DRAMWaitStates: 1,
		RefreshPeriod:  256,
		RefreshStall:   2,
		BarrierExtra:   4,
		PEsPerMC:       4,
	}
}
