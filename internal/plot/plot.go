// Package plot renders small ASCII line/scatter charts for the
// experiment figures: the paper presents Figures 6-12 as plots, and
// cmd/pasmbench -plot reproduces their shapes directly in the
// terminal. Stdlib only, deterministic output.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named data series.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Plot is a chart definition. The zero value is not usable; set at
// least one series. Width/Height are the plotting area in characters
// (sensible defaults applied when zero).
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// LogY plots log10(y) (for the paper's execution times, which span
	// four orders of magnitude across problem sizes).
	LogY bool
	// Width and Height of the plot area in characters.
	Width, Height int
}

// markers assigned to series in order.
var markers = []byte{'*', '+', 'o', 'x', '#', '@'}

// Render draws the chart.
func (p *Plot) Render() string {
	w, h := p.Width, p.Height
	if w <= 0 {
		w = 56
	}
	if h <= 0 {
		h = 16
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	ty := func(y float64) float64 {
		if p.LogY {
			if y <= 0 {
				return math.NaN()
			}
			return math.Log10(y)
		}
		return y
	}
	for _, s := range p.Series {
		for i := range s.X {
			y := ty(s.Y[i])
			if math.IsNaN(s.X[i]) || math.IsNaN(y) {
				continue
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, y)
			ymax = math.Max(ymax, y)
		}
	}
	if math.IsInf(xmin, 1) {
		return p.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range p.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			y := ty(s.Y[i])
			if math.IsNaN(s.X[i]) || math.IsNaN(y) {
				continue
			}
			col := int(math.Round((s.X[i] - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((y-ymin)/(ymax-ymin)*float64(h-1)))
			if col < 0 || col >= w || row < 0 || row >= h {
				continue
			}
			if grid[row][col] == ' ' || grid[row][col] == m {
				grid[row][col] = m
			} else {
				grid[row][col] = '&' // collision of different series
			}
		}
	}

	var b strings.Builder
	if p.Title != "" {
		b.WriteString(p.Title)
		b.WriteByte('\n')
	}
	yfmt := func(v float64) string {
		if p.LogY {
			return fmt.Sprintf("%9.3g", math.Pow(10, v))
		}
		return fmt.Sprintf("%9.3g", v)
	}
	for r := 0; r < h; r++ {
		switch r {
		case 0:
			b.WriteString(yfmt(ymax))
		case h - 1:
			b.WriteString(yfmt(ymin))
		case (h - 1) / 2:
			b.WriteString(yfmt(ymin + (ymax-ymin)*float64(h-1-r)/float64(h-1)))
		default:
			b.WriteString(strings.Repeat(" ", 9))
		}
		b.WriteString(" |")
		b.Write(grid[r])
		b.WriteByte('\n')
	}
	b.WriteString(strings.Repeat(" ", 10) + "+" + strings.Repeat("-", w) + "\n")
	left := fmt.Sprintf("%-10.6g", xmin)
	right := fmt.Sprintf("%10.6g", xmax)
	mid := p.XLabel
	pad := w - len(left) - len(right) - len(mid)
	if pad < 1 {
		pad = 1
		mid = ""
	}
	b.WriteString(strings.Repeat(" ", 11) + left +
		strings.Repeat(" ", pad/2) + mid + strings.Repeat(" ", pad-pad/2) + right + "\n")
	// Legend.
	var leg []string
	for si, s := range p.Series {
		leg = append(leg, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	b.WriteString("           " + strings.Join(leg, "   "))
	if p.LogY {
		b.WriteString("   (log y")
		if p.YLabel != "" {
			b.WriteString(": " + p.YLabel)
		}
		b.WriteString(")")
	} else if p.YLabel != "" {
		b.WriteString("   (y: " + p.YLabel + ")")
	}
	b.WriteByte('\n')
	return b.String()
}
