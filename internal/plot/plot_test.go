package plot

import (
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	p := &Plot{
		Title:  "test chart",
		XLabel: "n",
		Series: []Series{
			{Name: "up", X: []float64{1, 2, 3, 4}, Y: []float64{1, 2, 3, 4}},
			{Name: "down", X: []float64{1, 2, 3, 4}, Y: []float64{4, 3, 2, 1}},
		},
	}
	out := p.Render()
	for _, want := range []string{"test chart", "* up", "+ down", "|", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The rising series' marker must appear above the falling one's at
	// the right edge: find last line containing '*' vs '+'.
	lines := strings.Split(out, "\n")
	firstStar, firstPlus := -1, -1
	for i, l := range lines {
		if firstStar == -1 && strings.Contains(l, "*") && strings.Contains(l, "|") {
			firstStar = i
		}
		if firstPlus == -1 && strings.Contains(l, "+") && strings.Contains(l, "|") {
			firstPlus = i
		}
	}
	if firstStar == -1 || firstPlus == -1 {
		t.Fatalf("markers not plotted:\n%s", out)
	}
}

func TestRenderLogY(t *testing.T) {
	p := &Plot{
		LogY:   true,
		Series: []Series{{Name: "t", X: []float64{1, 2, 3}, Y: []float64{100, 10000, 1000000}}},
	}
	out := p.Render()
	if !strings.Contains(out, "1e+06") && !strings.Contains(out, "1e+6") {
		t.Errorf("log axis label missing:\n%s", out)
	}
	if !strings.Contains(out, "log y") {
		t.Errorf("log note missing:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	p := &Plot{Title: "empty"}
	if out := p.Render(); !strings.Contains(out, "no data") {
		t.Errorf("empty plot: %q", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	p := &Plot{Series: []Series{{Name: "c", X: []float64{1, 2}, Y: []float64{5, 5}}}}
	out := p.Render()
	if !strings.Contains(out, "*") {
		t.Errorf("constant series not plotted:\n%s", out)
	}
}

func TestCollisionsMarked(t *testing.T) {
	p := &Plot{
		Width: 10, Height: 5,
		Series: []Series{
			{Name: "a", X: []float64{1}, Y: []float64{1}},
			{Name: "b", X: []float64{1}, Y: []float64{1}},
		},
	}
	if out := p.Render(); !strings.Contains(out, "&") {
		t.Errorf("collision marker missing:\n%s", out)
	}
}

func TestDeterministic(t *testing.T) {
	p := &Plot{Series: []Series{{Name: "s", X: []float64{1, 2, 3}, Y: []float64{3, 1, 2}}}}
	if p.Render() != p.Render() {
		t.Error("render not deterministic")
	}
}
