package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

func spec1() experiments.Spec {
	return experiments.Spec{Exps: []string{"table1"}, Seed: 1}
}

// TestErrorClassification is the retryable/permanent split, table
// driven: transient statuses and transport faults retry, client
// errors do not.
func TestErrorClassification(t *testing.T) {
	cases := []struct {
		name      string
		err       error
		retryable bool
	}{
		{"nil", nil, false},
		{"503 backpressure", &APIError{Status: 503}, true},
		{"500 server fault", &APIError{Status: 500}, true},
		{"502 bad gateway", &APIError{Status: 502}, true},
		{"504 gateway timeout", &APIError{Status: 504}, true},
		{"429 overload", &APIError{Status: 429}, true},
		{"408 request timeout", &APIError{Status: 408}, true},
		{"400 bad spec", &APIError{Status: 400}, false},
		{"404 unknown job", &APIError{Status: 404}, false},
		{"409 not finished", &APIError{Status: 409}, false},
		{"410 expired", &APIError{Status: 410}, false},
		{"422 unprocessable", &APIError{Status: 422}, false},
		{"wrapped 503", fmt.Errorf("submit: %w", &APIError{Status: 503}), true},
		{"wrapped 400", fmt.Errorf("submit: %w", &APIError{Status: 400}), false},
		{"transport refused", &url.Error{Op: "Post", URL: "http://x", Err: errors.New("connection refused")}, true},
		{"caller context canceled", context.Canceled, false},
		{"caller deadline exceeded", context.DeadlineExceeded, false},
		{"other error", errors.New("boom"), false},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.retryable {
			t.Errorf("%s: Retryable = %v, want %v", tc.name, got, tc.retryable)
		}
	}
}

// TestRetryUntilSuccess: transient 503s are retried with backoff until
// the server recovers; the attempt header marks each retry.
func TestRetryUntilSuccess(t *testing.T) {
	var calls atomic.Int32
	var attempts []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts = append(attempts, r.Header.Get(service.AttemptHeader))
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(503)
			fmt.Fprint(w, `{"error":"queue full"}`)
			return
		}
		fmt.Fprint(w, `{"id":"j1","state":"queued"}`)
	}))
	defer srv.Close()

	var slept []time.Duration
	c := New(srv.URL).WithRetry(RetryPolicy{
		MaxAttempts: 5, BaseBackoff: 10 * time.Millisecond, Seed: 42,
		sleep: func(d time.Duration) { slept = append(slept, d) },
	})
	st, err := c.Submit(context.Background(), spec1(), SubmitOptions{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if st.ID != "j1" {
		t.Errorf("job id = %q", st.ID)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
	if c.Retries() != 2 {
		t.Errorf("Retries() = %d, want 2", c.Retries())
	}
	if want := []string{"1", "2", "3"}; len(attempts) != 3 || attempts[0] != want[0] || attempts[1] != want[1] || attempts[2] != want[2] {
		t.Errorf("attempt headers = %v, want %v", attempts, want)
	}
	// Retry-After (1s) dominates the 10ms base backoff on each wait.
	for i, d := range slept {
		if d < time.Second {
			t.Errorf("sleep %d = %s, want >= 1s (Retry-After floor)", i, d)
		}
	}
}

// TestNoRetryOnPermanent: 400/422 fail immediately, zero retries.
func TestNoRetryOnPermanent(t *testing.T) {
	for _, status := range []int{400, 404, 422} {
		var calls atomic.Int32
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(status)
			fmt.Fprint(w, `{"error":"bad"}`)
		}))
		c := New(srv.URL).WithRetry(RetryPolicy{MaxAttempts: 4, BaseBackoff: time.Millisecond,
			sleep: func(time.Duration) {}})
		_, err := c.Submit(context.Background(), spec1(), SubmitOptions{})
		var api *APIError
		if !errors.As(err, &api) || api.Status != status {
			t.Errorf("status %d: err = %v", status, err)
		}
		if api != nil && api.Retryable() {
			t.Errorf("status %d claims retryable", status)
		}
		if calls.Load() != 1 {
			t.Errorf("status %d: server saw %d calls, want 1 (no retries)", status, calls.Load())
		}
		srv.Close()
	}
}

// TestRetryExhaustion: a persistently failing server exhausts
// MaxAttempts and returns the last error.
func TestRetryExhaustion(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(503)
		fmt.Fprint(w, `{"error":"still full"}`)
	}))
	defer srv.Close()
	c := New(srv.URL).WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond,
		sleep: func(time.Duration) {}})
	_, err := c.Submit(context.Background(), spec1(), SubmitOptions{})
	var api *APIError
	if !errors.As(err, &api) || api.Status != 503 {
		t.Fatalf("err = %v, want final 503", err)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
}

// TestRetryTransportError: a dead endpoint is retried (connection
// refused is transient) and the transport error surfaces at the end.
func TestRetryTransportError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := srv.URL
	srv.Close() // nothing listens now
	c := New(addr).WithRetry(RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond,
		sleep: func(time.Duration) {}})
	_, err := c.Submit(context.Background(), spec1(), SubmitOptions{})
	if err == nil {
		t.Fatal("submit to dead endpoint succeeded")
	}
	if c.Retries() != 2 {
		t.Errorf("Retries() = %d, want 2", c.Retries())
	}
}

// TestBackoffGrowsAndHonorsCap: nominal backoff doubles per attempt,
// jitter keeps it in [b/2, b], MaxBackoff caps it.
func TestBackoffGrowsAndHonorsCap(t *testing.T) {
	c := New("127.0.0.1:1").WithRetry(RetryPolicy{
		MaxAttempts: 8, BaseBackoff: 100 * time.Millisecond, MaxBackoff: time.Second, Seed: 7,
	})
	for attempt, wantMax := range map[int]time.Duration{
		2: 100 * time.Millisecond,
		3: 200 * time.Millisecond,
		4: 400 * time.Millisecond,
		6: time.Second, // capped
		8: time.Second,
	} {
		got := c.backoff(attempt, nil)
		if got < wantMax/2 || got > wantMax {
			t.Errorf("attempt %d: backoff %s outside [%s, %s]", attempt, got, wantMax/2, wantMax)
		}
	}
}

// TestHedgedSubmit: when the first submit stalls, the hedge fires and
// its answer is used; a fast first answer means no hedge at all.
func TestHedgedSubmit(t *testing.T) {
	var calls atomic.Int32
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			<-release // first request hangs until the test ends
		}
		fmt.Fprint(w, `{"id":"j9","state":"done"}`)
	}))
	defer srv.Close()
	defer close(release)

	c := New(srv.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, spec1(), SubmitOptions{Hedge: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("hedged submit: %v", err)
	}
	if st.ID != "j9" {
		t.Errorf("job id = %q", st.ID)
	}
	if c.Hedges() != 1 {
		t.Errorf("Hedges() = %d, want 1", c.Hedges())
	}

	// Fast path: server answers immediately, hedge timer never fires.
	st, err = c.Submit(ctx, spec1(), SubmitOptions{Hedge: 10 * time.Second})
	if err != nil || st.ID != "j9" {
		t.Fatalf("fast submit: %v %v", st, err)
	}
	if c.Hedges() != 1 {
		t.Errorf("fast path hedged: Hedges() = %d, want still 1", c.Hedges())
	}
}

// TestHedgedSubmitBothFail: both copies failing returns the first
// error instead of hanging.
func TestHedgedSubmitBothFail(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(400)
		fmt.Fprint(w, `{"error":"bad spec"}`)
	}))
	defer srv.Close()
	c := New(srv.URL)
	_, err := c.Submit(context.Background(), spec1(), SubmitOptions{Hedge: time.Millisecond})
	var api *APIError
	if !errors.As(err, &api) || api.Status != 400 {
		t.Fatalf("err = %v, want 400", err)
	}
}

// TestDeterministicJitter: two clients with the same seed draw the
// same backoff sequence; different seeds diverge.
func TestDeterministicJitter(t *testing.T) {
	seq := func(seed uint64) []time.Duration {
		c := New("127.0.0.1:1").WithRetry(RetryPolicy{
			MaxAttempts: 4, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second, Seed: seed})
		var out []time.Duration
		for a := 2; a <= 6; a++ {
			out = append(out, c.backoff(a, nil))
		}
		return out
	}
	a, b, c2 := seq(11), seq(11), seq(12)
	same := true
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at %d: %s vs %s", i, a[i], b[i])
		}
		if a[i] != c2[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical jitter")
	}
}

// TestBackoffAbortsOnCancel: a canceled context ends a backoff wait
// promptly with ctx.Err() instead of sleeping out the full delay.
func TestBackoffAbortsOnCancel(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(503)
		fmt.Fprint(w, `{"error":"always full"}`)
	}))
	defer srv.Close()

	// Huge backoff: if the sleep were not ctx-aware, the test would
	// block for minutes.
	c := New(srv.URL).WithRetry(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Minute, MaxBackoff: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond) // let the first attempt fail and the wait begin
		cancel()
	}()
	start := time.Now()
	_, err := c.Submit(ctx, spec1(), SubmitOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("canceled submit took %s — backoff did not abort", d)
	}
}

// TestBackoffAbortsOnDeadline: same property for a deadline, through
// the test sleep override path.
func TestBackoffAbortsOnDeadline(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(503)
		fmt.Fprint(w, `{"error":"always full"}`)
	}))
	defer srv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c := New(srv.URL).WithRetry(RetryPolicy{MaxAttempts: 5, BaseBackoff: time.Millisecond,
		sleep: func(time.Duration) { cancel() }}) // context dies mid-wait
	_, err := c.Submit(ctx, spec1(), SubmitOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled after mid-wait cancel", err)
	}
}

// TestHedgeWaitAbortsOnCancel: a hedged submit whose requests all hang
// returns ctx.Err() as soon as the caller cancels.
func TestHedgeWaitAbortsOnCancel(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
	}))
	defer srv.Close()
	defer close(release) // LIFO: release the handler before Close waits on it

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := New(srv.URL).Submit(ctx, spec1(), SubmitOptions{Hedge: time.Hour})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("canceled hedged submit took %s", d)
	}
}

// TestBodyCutRetryable: a response body cut mid-stream (unexpected
// EOF) classifies as retryable.
func TestBodyCutRetryable(t *testing.T) {
	err := fmt.Errorf("reading body: %w", io.ErrUnexpectedEOF)
	if !Retryable(err) {
		t.Error("io.ErrUnexpectedEOF not retryable")
	}
}

// TestResultMeta: the cached marker and producing code version ride
// the X-Pasm-Cached and X-Pasm-Code headers.
func TestResultMeta(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Pasm-Cached", "true")
		w.Header().Set(service.CodeHeader, "pasm-sim/test")
		fmt.Fprint(w, `{"doc":1}`)
	}))
	defer srv.Close()
	meta, err := New(srv.URL).ResultMeta(context.Background(), "j1")
	if err != nil || !meta.Cached || string(meta.Body) != `{"doc":1}` || meta.Code != "pasm-sim/test" {
		t.Fatalf("ResultMeta = %+v, %v", meta, err)
	}
}

// TestWaitOnce: a single long-poll round trip carries the timeout and
// returns a non-terminal status without looping.
func TestWaitOnce(t *testing.T) {
	var calls atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if r.URL.Query().Get("timeout_ms") != "1500" {
			t.Errorf("timeout_ms = %q", r.URL.Query().Get("timeout_ms"))
		}
		fmt.Fprint(w, `{"id":"j1","state":"running"}`)
	}))
	defer srv.Close()
	st, err := New(srv.URL).WaitOnce(context.Background(), "j1", 1500*time.Millisecond)
	if err != nil || st.State != service.StateRunning {
		t.Fatalf("WaitOnce = %+v, %v", st, err)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want exactly 1", calls.Load())
	}
}

// TestFill: the peer-fill request carries the canonical spec, the
// producing code version, and (when configured) the shared secret as
// headers with the result bytes verbatim in the body; 200 means
// stored, 208 means the peer already had it, anything else is an
// error.
func TestFill(t *testing.T) {
	var status atomic.Int32
	status.Store(http.StatusOK)
	var gotSpec, gotCode, gotSecret, gotBody string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != service.FillPath {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		gotSpec = r.Header.Get(service.FillSpecHeader)
		gotCode = r.Header.Get(service.FillCodeHeader)
		gotSecret = r.Header.Get(service.FillSecretHeader)
		b, _ := io.ReadAll(r.Body)
		gotBody = string(b)
		w.WriteHeader(int(status.Load()))
	}))
	defer srv.Close()

	ctx := context.Background()
	cl := New(srv.URL).WithFillSecret("fill-me")
	stored, err := cl.Fill(ctx, spec1(), []byte("result-bytes\n"), "pasm-sim/test")
	if err != nil || !stored {
		t.Fatalf("Fill = (%v, %v), want stored", stored, err)
	}
	if gotSpec == "" || gotCode != "pasm-sim/test" || gotSecret != "fill-me" || gotBody != "result-bytes\n" {
		t.Errorf("fill request: spec=%q code=%q secret=%q body=%q", gotSpec, gotCode, gotSecret, gotBody)
	}

	status.Store(http.StatusAlreadyReported)
	if stored, err = cl.Fill(ctx, spec1(), []byte("x"), "pasm-sim/test"); err != nil || stored {
		t.Errorf("duplicate Fill = (%v, %v), want (false, nil)", stored, err)
	}

	// Without WithFillSecret the header is simply absent.
	status.Store(http.StatusOK)
	if _, err = New(srv.URL).Fill(ctx, spec1(), []byte("x"), "pasm-sim/test"); err != nil {
		t.Fatalf("secretless Fill: %v", err)
	}
	if gotSecret != "" {
		t.Errorf("secretless Fill sent secret header %q", gotSecret)
	}

	status.Store(http.StatusForbidden)
	if _, err = cl.Fill(ctx, spec1(), []byte("x"), "pasm-sim/test"); err == nil {
		t.Error("rejected Fill returned nil error")
	}
}
