// Package client is the thin Go client for the pasmd experiment
// service (internal/service over HTTP). It speaks the /v1 job API:
// submit a spec, poll or long-poll its status, and fetch the result
// document — bytes identical to what `pasmbench -json` produces
// locally with host timings off, which is what lets `pasmbench
// -remote` byte-compare the two paths.
//
// Resilience: a RetryPolicy (WithRetry) retries transient failures —
// transport errors, timeouts, and retryable statuses (408/429/5xx) —
// with exponential backoff, deterministic jitter, and the server's
// Retry-After hint honored as a floor. Permanent client errors (400,
// 404, 422, ...) fail immediately. Retries mark themselves with the
// X-Pasm-Attempt header so the server's /metrics counts them.
// SubmitOptions.Hedge races a second identical submit after a delay;
// hedging is safe because submission is idempotent — identical
// in-flight specs coalesce server-side and finished ones are served
// from the content-addressed cache.
package client

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
	"repro/internal/telemetry"
)

// APIError is any non-2xx response. For 503 it carries the server's
// Retry-After hint.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("pasmd: %s (HTTP %d, retry after %s)", e.Message, e.Status, e.RetryAfter)
	}
	return fmt.Sprintf("pasmd: %s (HTTP %d)", e.Message, e.Status)
}

// Temporary reports whether the request may succeed if retried (the
// backpressure rejections). Kept for compatibility; Retryable is the
// broader classification the retry policy uses.
func (e *APIError) Temporary() bool { return e.Status == http.StatusServiceUnavailable }

// Retryable reports whether the status marks a transient condition:
// backpressure (503), overload (429), server faults (500/502/504), or
// a request timeout (408). Client errors like 400 and 422 are
// permanent — retrying an invalid spec can never succeed.
func (e *APIError) Retryable() bool {
	switch e.Status {
	case http.StatusRequestTimeout, http.StatusTooManyRequests,
		http.StatusInternalServerError, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Retryable classifies any client error: APIErrors by status, and
// transport-level failures (connection refused/reset, aborted
// responses, timeouts) as retryable unless the caller's context ended.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var api *APIError
	if errors.As(err, &api) {
		return api.Retryable()
	}
	var uerr *url.Error
	if errors.As(err, &uerr) {
		return true // transport-level: refused, reset, EOF, timeout
	}
	if errors.Is(err, io.ErrUnexpectedEOF) {
		return true // response body cut mid-stream: the read failed, retry
	}
	return false
}

// RetryPolicy configures automatic retries of transient failures.
// The zero policy never retries.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request (1 or less
	// disables retries).
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay, doubling each
	// attempt. Default 100ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth. Default 5s.
	MaxBackoff time.Duration
	// Seed drives the deterministic jitter (full jitter in
	// [backoff/2, backoff]); two clients with different seeds desync
	// even when rejected in lockstep.
	Seed uint64

	// sleep overrides waiting (tests).
	sleep func(time.Duration)
}

// Client talks to one pasmd instance.
type Client struct {
	base       string
	hc         *http.Client
	retry      RetryPolicy
	fillSecret string
	tracer     *telemetry.Tracer

	jitterState atomic.Uint64
	retries     atomic.Int64
	hedges      atomic.Int64
}

// New returns a client for addr ("host:port" or a full http URL).
func New(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
}

// WithRetry installs a retry policy and returns the client.
func (c *Client) WithRetry(p RetryPolicy) *Client {
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	c.retry = p
	c.jitterState.Store(p.Seed)
	return c
}

// WithTransport installs a custom HTTP transport and returns the
// client (the cluster gateway uses this to thread a fault-injecting
// transport through its replica connections).
func (c *Client) WithTransport(rt http.RoundTripper) *Client {
	c.hc = &http.Client{Transport: rt}
	return c
}

// WithFillSecret installs the shared secret Fill sends in the
// X-Pasm-Fill-Secret header (the server rejects fills without it) and
// returns the client.
func (c *Client) WithFillSecret(secret string) *Client {
	c.fillSecret = secret
	return c
}

// WithTracing makes the client inject an X-Pasm-Trace context on
// sampled submits (probability sample in [0,1]), so traces start at
// the true origin of a request. The server hop that receives the
// header records the spans; the client only mints the identity.
// Explicit SubmitOptions.TraceHeader values win over sampling.
func (c *Client) WithTracing(sample float64, seed uint64) *Client {
	c.tracer = telemetry.New(telemetry.Config{Component: "client", Sample: sample, Seed: seed})
	return c
}

// Retries returns how many retry attempts this client has issued.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Hedges returns how many hedged submits this client has launched.
func (c *Client) Hedges() int64 { return c.hedges.Load() }

// SubmitOptions tune one submission.
type SubmitOptions struct {
	// Deadline, when > 0, bounds the job's whole lifetime: admission,
	// queue wait, and execution (the server cancels a running job when
	// it passes).
	Deadline time.Duration
	// Wait, when > 0, asks the server to long-poll the job before
	// responding, so small specs complete in one round trip.
	Wait time.Duration
	// Hedge, when > 0, launches a second identical submit if the first
	// has not answered within this long, taking whichever answers
	// first. Safe for any spec: submission is idempotent (coalescing +
	// content-addressed cache).
	Hedge time.Duration
	// TraceHeader, when non-empty, rides the submit as the X-Pasm-Trace
	// value — the gateway uses it to continue its own trace context
	// into the replica. Empty falls back to the client's WithTracing
	// sampling (if configured), then to untraced.
	TraceHeader string
	// Class is the request's SLO class name (the server resolves its
	// latency target from its -classes table unless SLOMs overrides).
	Class string
	// SLOMs, when > 0, is the request's explicit latency target in
	// milliseconds; it drives priority under SLO-aware scheduling.
	SLOMs int64
	// ClientID identifies the submitting principal for per-client
	// admission control and the fairness index. Empty = anonymous
	// (never rate-limited).
	ClientID string
}

// backoff computes the wait before the given retry attempt (2-based):
// exponential growth with full jitter in [b/2, b], floored by the
// server's Retry-After hint when one came back.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	b := c.retry.BaseBackoff << (attempt - 2)
	if b <= 0 || b > c.retry.MaxBackoff {
		b = c.retry.MaxBackoff
	}
	// xorshift64 over the seeded state: deterministic, lock-free.
	for {
		old := c.jitterState.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if x == 0 {
			x = 0x9e3779b97f4a7c15
		}
		if c.jitterState.CompareAndSwap(old, x) {
			b = b/2 + time.Duration(x%uint64(b/2+1))
			break
		}
	}
	var api *APIError
	if errors.As(lastErr, &api) && api.RetryAfter > b {
		b = api.RetryAfter
	}
	return b
}

// do issues one logical request, retrying transient failures per the
// policy. body is re-serialized once and replayed on every attempt.
func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	return c.doTraced(ctx, method, path, body, out, "")
}

// doTraced is do carrying an X-Pasm-Trace header value (empty: none).
// The trace context is replayed on every retry attempt — the retries
// are one logical request.
func (c *Client) doTraced(ctx context.Context, method, path string, body any, out any, trace string) error {
	var buf []byte
	if body != nil {
		var err error
		if buf, err = json.Marshal(body); err != nil {
			return err
		}
	}
	attempts := c.retry.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		if attempt > 1 {
			c.retries.Add(1)
			wait := c.backoff(attempt, lastErr)
			// The backoff wait is ctx-aware: a canceled caller gets
			// ctx.Err() back promptly instead of sleeping out the full
			// backoff (the gateway's failover path depends on this).
			if c.retry.sleep != nil {
				c.retry.sleep(wait)
				if err := ctx.Err(); err != nil {
					return err
				}
			} else {
				select {
				case <-time.After(wait):
				case <-ctx.Done():
					return ctx.Err()
				}
			}
		}
		err := c.doOnce(ctx, method, path, buf, out, attempt, trace)
		if err == nil {
			return nil
		}
		lastErr = err
		if !Retryable(err) || ctx.Err() != nil {
			return err
		}
	}
	return lastErr
}

func (c *Client) doOnce(ctx context.Context, method, path string, body []byte, out any, attempt int, trace string) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	req.Header.Set(service.AttemptHeader, strconv.Itoa(attempt))
	if trace != "" {
		req.Header.Set(telemetry.Header, trace)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiError(resp, data)
	}
	if out != nil {
		switch o := out.(type) {
		case *[]byte:
			*o = data
			return nil
		case *rawResponse:
			o.body = data
			o.header = resp.Header.Clone()
			return nil
		}
		return json.Unmarshal(data, out)
	}
	return nil
}

// rawResponse captures a response's body and headers verbatim (the
// gateway needs X-Pasm-Cached alongside the result bytes).
type rawResponse struct {
	body   []byte
	header http.Header
}

func apiError(resp *http.Response, data []byte) error {
	e := &APIError{Status: resp.StatusCode}
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		e.Message = body.Error
	} else {
		e.Message = strings.TrimSpace(string(data))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// Submit sends a spec and returns the job to poll. For cache hits the
// returned job is already done; for coalesced submissions it is the
// shared in-flight job. With opts.Hedge set, a stalled submit races a
// second identical one.
func (c *Client) Submit(ctx context.Context, spec experiments.Spec, opts SubmitOptions) (service.JobStatus, error) {
	req := service.SubmitRequest{Spec: spec, Class: opts.Class, SLOMs: opts.SLOMs, Client: opts.ClientID}
	if opts.Deadline > 0 {
		req.DeadlineMS = opts.Deadline.Milliseconds()
	}
	if opts.Wait > 0 {
		req.WaitMS = opts.Wait.Milliseconds()
	}
	trace := opts.TraceHeader
	if trace == "" {
		if ctx2, ok := c.tracer.SampleContext(); ok {
			trace = ctx2.Header()
		}
	}
	if opts.Hedge > 0 {
		return c.hedgedSubmit(ctx, req, opts.Hedge, trace)
	}
	var st service.JobStatus
	err := c.doTraced(ctx, http.MethodPost, "/v1/jobs", req, &st, trace)
	return st, err
}

// hedgedSubmit issues the submit, then launches one backup copy if no
// answer arrived within hedge. First success wins; the loser's
// response is discarded (both name the same job server-side, because
// identical specs coalesce). Both failing returns the first error.
func (c *Client) hedgedSubmit(ctx context.Context, req service.SubmitRequest, hedge time.Duration, trace string) (service.JobStatus, error) {
	type result struct {
		st  service.JobStatus
		err error
	}
	ch := make(chan result, 2)
	launch := func() {
		go func() {
			var st service.JobStatus
			err := c.doTraced(ctx, http.MethodPost, "/v1/jobs", req, &st, trace)
			ch <- result{st, err}
		}()
	}
	launch()
	outstanding := 1
	timer := time.NewTimer(hedge)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				return r.st, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding--; outstanding == 0 {
				return service.JobStatus{}, firstErr
			}
		case <-timer.C:
			c.hedges.Add(1)
			launch()
			outstanding++
		case <-ctx.Done():
			return service.JobStatus{}, ctx.Err()
		}
	}
}

// Job polls a job's status once.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait long-polls until the job is terminal or ctx expires, re-arming
// the server-side poll as needed.
func (c *Client) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	for {
		var st service.JobStatus
		err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/wait?timeout_ms=30000", nil, &st)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if ctx.Err() != nil {
			return st, ctx.Err()
		}
	}
}

// List fetches every tracked job's status.
func (c *Client) List(ctx context.Context) ([]service.JobStatus, error) {
	var out []service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Result fetches a done job's report document.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &raw)
	return raw, err
}

// ResultMeta is a done job's report document plus the response
// metadata the gateway routes on: the served-from-cache marker and the
// CodeVersion that produced the bytes.
type ResultMeta struct {
	Body   []byte
	Cached bool
	Code   string
}

// ResultMeta fetches a done job's report document plus the
// X-Pasm-Cached and X-Pasm-Code response headers.
func (c *Client) ResultMeta(ctx context.Context, id string) (ResultMeta, error) {
	var rr rawResponse
	if err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &rr); err != nil {
		return ResultMeta{}, err
	}
	return ResultMeta{
		Body:   rr.body,
		Cached: rr.header.Get("X-Pasm-Cached") == "true",
		Code:   rr.header.Get(service.CodeHeader),
	}, nil
}

// WaitOnce long-polls the job for at most timeout and returns the
// latest status, terminal or not — one server round trip, unlike Wait,
// which loops until terminal. Gateways forward a client's own wait
// budget through this.
func (c *Client) WaitOnce(ctx context.Context, id string, timeout time.Duration) (service.JobStatus, error) {
	var st service.JobStatus
	path := fmt.Sprintf("/v1/jobs/%s/wait?timeout_ms=%d", id, timeout.Milliseconds())
	err := c.do(ctx, http.MethodGet, path, nil, &st)
	return st, err
}

// Fill offers an externally computed result document to this instance's
// result cache (the peer-fill path; see service.FillPath). The result
// bytes travel as the raw request body so they are stored verbatim;
// the spec, the producing CodeVersion, and the shared fill secret
// (WithFillSecret) ride headers. Returns whether the bytes were stored
// (false: the instance already had them).
func (c *Client) Fill(ctx context.Context, spec experiments.Spec, result []byte, code string) (bool, error) {
	rawSpec, err := json.Marshal(spec)
	if err != nil {
		return false, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+service.FillPath, bytes.NewReader(result))
	if err != nil {
		return false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.FillSpecHeader, base64.StdEncoding.EncodeToString(rawSpec))
	req.Header.Set(service.FillCodeHeader, code)
	if c.fillSecret != "" {
		req.Header.Set(service.FillSecretHeader, c.fillSecret)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return false, err
	}
	if resp.StatusCode >= 300 && resp.StatusCode != http.StatusAlreadyReported {
		return false, apiError(resp, data)
	}
	return resp.StatusCode == http.StatusOK, nil
}

// Run is the synchronous convenience path: submit, wait for a
// terminal state, fetch the bytes.
func (c *Client) Run(ctx context.Context, spec experiments.Spec, opts SubmitOptions) ([]byte, service.JobStatus, error) {
	st, err := c.Submit(ctx, spec, opts)
	if err != nil {
		return nil, st, err
	}
	if !st.State.Terminal() {
		if st, err = c.Wait(ctx, st.ID); err != nil {
			return nil, st, err
		}
	}
	if st.State != service.StateDone {
		return nil, st, fmt.Errorf("pasmd: job %s %s: %s", st.ID, st.State, st.Error)
	}
	raw, err := c.Result(ctx, st.ID)
	return raw, st, err
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// HealthInfo fetches the enriched /healthz snapshot in typed form —
// the gateway's health checker routes on its queue depth, in-flight
// count, and draining flag.
func (c *Client) HealthInfo(ctx context.Context) (service.HealthInfo, error) {
	var out service.HealthInfo
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Metrics fetches the service and cache counters.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	var out map[string]float64
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}
