// Package client is the thin Go client for the pasmd experiment
// service (internal/service over HTTP). It speaks the /v1 job API:
// submit a spec, poll or long-poll its status, and fetch the result
// document — bytes identical to what `pasmbench -json` produces
// locally with host timings off, which is what lets `pasmbench
// -remote` byte-compare the two paths.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/service"
)

// APIError is any non-2xx response. For 503 it carries the server's
// Retry-After hint.
type APIError struct {
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("pasmd: %s (HTTP %d, retry after %s)", e.Message, e.Status, e.RetryAfter)
	}
	return fmt.Sprintf("pasmd: %s (HTTP %d)", e.Message, e.Status)
}

// Temporary reports whether the request may succeed if retried (the
// backpressure rejections).
func (e *APIError) Temporary() bool { return e.Status == http.StatusServiceUnavailable }

// Client talks to one pasmd instance.
type Client struct {
	base string
	hc   *http.Client
}

// New returns a client for addr ("host:port" or a full http URL).
func New(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{base: strings.TrimRight(addr, "/"), hc: &http.Client{}}
}

// SubmitOptions tune one submission.
type SubmitOptions struct {
	// Deadline, when > 0, requires the job to start executing within
	// this long (server-side admission control may reject it outright).
	Deadline time.Duration
	// Wait, when > 0, asks the server to long-poll the job before
	// responding, so small specs complete in one round trip.
	Wait time.Duration
}

func (c *Client) do(ctx context.Context, method, path string, body any, out any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode >= 300 {
		return apiError(resp, data)
	}
	if out != nil {
		if raw, ok := out.(*[]byte); ok {
			*raw = data
			return nil
		}
		return json.Unmarshal(data, out)
	}
	return nil
}

func apiError(resp *http.Response, data []byte) error {
	e := &APIError{Status: resp.StatusCode}
	var body struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &body) == nil && body.Error != "" {
		e.Message = body.Error
	} else {
		e.Message = strings.TrimSpace(string(data))
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// Submit sends a spec and returns the job to poll. For cache hits the
// returned job is already done; for coalesced submissions it is the
// shared in-flight job.
func (c *Client) Submit(ctx context.Context, spec experiments.Spec, opts SubmitOptions) (service.JobStatus, error) {
	req := service.SubmitRequest{Spec: spec}
	if opts.Deadline > 0 {
		req.DeadlineMS = opts.Deadline.Milliseconds()
	}
	if opts.Wait > 0 {
		req.WaitMS = opts.Wait.Milliseconds()
	}
	var st service.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", req, &st)
	return st, err
}

// Job polls a job's status once.
func (c *Client) Job(ctx context.Context, id string) (service.JobStatus, error) {
	var st service.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Wait long-polls until the job is terminal or ctx expires, re-arming
// the server-side poll as needed.
func (c *Client) Wait(ctx context.Context, id string) (service.JobStatus, error) {
	for {
		var st service.JobStatus
		err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/wait?timeout_ms=30000", nil, &st)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		if ctx.Err() != nil {
			return st, ctx.Err()
		}
	}
}

// Result fetches a done job's report document.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	var raw []byte
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id+"/result", nil, &raw)
	return raw, err
}

// Run is the synchronous convenience path: submit, wait for a
// terminal state, fetch the bytes.
func (c *Client) Run(ctx context.Context, spec experiments.Spec, opts SubmitOptions) ([]byte, service.JobStatus, error) {
	st, err := c.Submit(ctx, spec, opts)
	if err != nil {
		return nil, st, err
	}
	if !st.State.Terminal() {
		if st, err = c.Wait(ctx, st.ID); err != nil {
			return nil, st, err
		}
	}
	if st.State != service.StateDone {
		return nil, st, fmt.Errorf("pasmd: job %s %s: %s", st.ID, st.State, st.Error)
	}
	raw, err := c.Result(ctx, st.ID)
	return raw, st, err
}

// Health checks /healthz.
func (c *Client) Health(ctx context.Context) (map[string]any, error) {
	var out map[string]any
	err := c.do(ctx, http.MethodGet, "/healthz", nil, &out)
	return out, err
}

// Metrics fetches the service and cache counters.
func (c *Client) Metrics(ctx context.Context) (map[string]float64, error) {
	var out map[string]float64
	err := c.do(ctx, http.MethodGet, "/metrics", nil, &out)
	return out, err
}
