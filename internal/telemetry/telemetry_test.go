package telemetry

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// fakeClock is a deterministic stepping clock for tracer tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

func newTestTracer(cfg Config) (*Tracer, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1700000000, 0)}
	cfg.now = clk.now
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	return New(cfg), clk
}

func TestHeaderRoundTrip(t *testing.T) {
	cases := []struct {
		v      string
		ok     bool
		trace  string
		parent string
	}{
		{"0123456789abcdef", true, "0123456789abcdef", ""},
		{"0123456789abcdef/00c0ffee", true, "0123456789abcdef", "00c0ffee"},
		{"", false, "", ""},
		{"short", false, "", ""},
		{"0123456789ABCDEF", false, "", ""}, // uppercase rejected
		{"0123456789abcdef/xyz", false, "", ""},
		{"0123456789abcdef/00c0ffee/extra", false, "", ""},
	}
	for _, c := range cases {
		ctx, ok := ParseHeader(c.v)
		if ok != c.ok || ctx.Trace != c.trace || ctx.Parent != c.parent {
			t.Errorf("ParseHeader(%q) = %+v, %v; want trace=%q parent=%q ok=%v",
				c.v, ctx, ok, c.trace, c.parent, c.ok)
		}
		if ok && ctx.Header() != c.v {
			t.Errorf("Header round trip %q -> %q", c.v, ctx.Header())
		}
	}
}

func TestSamplingAndPropagation(t *testing.T) {
	tr, _ := newTestTracer(Config{Component: "pasmd", Sample: 0})
	if r := tr.Start("", "submit"); r != nil {
		t.Fatalf("sample=0 with no header should not trace")
	}
	if _, _, unsampled := tr.Stats(); unsampled != 1 {
		t.Fatalf("unsampled = %d, want 1", unsampled)
	}
	// A valid propagated header always traces, regardless of Sample.
	r := tr.Start("0123456789abcdef/00c0ffee", "submit")
	if r == nil {
		t.Fatalf("propagated header must trace at sample=0")
	}
	if r.Trace != "0123456789abcdef" || r.Parent != "00c0ffee" {
		t.Fatalf("context not continued: %+v", r)
	}
	// The downstream header keeps the trace but re-parents to this hop.
	hv := r.HeaderValue()
	if !strings.HasPrefix(hv, "0123456789abcdef/") || hv == "0123456789abcdef/00c0ffee" {
		t.Fatalf("downstream header %q should re-parent under the same trace", hv)
	}
	// Malformed headers fall back to sampling, never error.
	if r := tr.Start("not-a-trace", "submit"); r != nil {
		t.Fatalf("malformed header at sample=0 should not trace")
	}
	tr2, _ := newTestTracer(Config{Component: "pasmd", Sample: 1})
	if r := tr2.Start("", "submit"); r == nil {
		t.Fatalf("sample=1 should trace")
	}
}

func TestSpansAndSnapshot(t *testing.T) {
	tr, clk := newTestTracer(Config{Component: "pasmd", Sample: 1})
	r := tr.Start("", "submit")
	s := r.Span("queue").Attr("depth", 3)
	s.EndSpan()
	run := r.Span("run").OnTrack("worker").Attr("cache", "miss")
	run.EndSpan()
	open := r.Span("never-ended")
	_ = open
	r.Finish()

	snap := r.Snapshot()
	if !snap.Done || snap.DurMs <= 0 {
		t.Fatalf("snapshot not finished: %+v", snap)
	}
	if len(snap.Spans) != 2 {
		t.Fatalf("want 2 finished spans (open span excluded), got %d", len(snap.Spans))
	}
	q := snap.Spans[0]
	if q.Name != "queue" || q.Track != "pasmd" || len(q.Attrs) != 1 || q.Attrs[0].Key != "depth" {
		t.Fatalf("queue span wrong: %+v", q)
	}
	if snap.Spans[1].Track != "worker" {
		t.Fatalf("OnTrack not applied: %+v", snap.Spans[1])
	}
	if q.DurUs <= 0 {
		t.Fatalf("span duration not positive: %+v", q)
	}
	_ = clk
	// Finished request is retained and findable.
	if tr.Lookup(r.Trace) == nil {
		t.Fatalf("finished request not retained")
	}
	recent, slowest := tr.Requests()
	if len(recent) != 1 || len(slowest) != 1 {
		t.Fatalf("retention rings: recent=%d slowest=%d", len(recent), len(slowest))
	}
}

func TestRetentionBounds(t *testing.T) {
	tr, clk := newTestTracer(Config{Component: "gw", Sample: 1, Ring: 4, Slow: 2})
	var slowTrace string
	for i := 0; i < 10; i++ {
		r := tr.Start("", "submit")
		if i == 5 { // make one request much slower than the rest
			clk.t = clk.t.Add(time.Second)
			slowTrace = r.Trace
		}
		r.Finish()
	}
	recent, slowest := tr.Requests()
	if len(recent) != 4 {
		t.Fatalf("ring length %d, want 4", len(recent))
	}
	if len(slowest) != 2 {
		t.Fatalf("slow length %d, want 2", len(slowest))
	}
	if slowest[0].Trace != slowTrace {
		t.Fatalf("slowest[0] = %s, want %s", slowest[0].Trace, slowTrace)
	}
	if slowest[0].DurMs < slowest[1].DurMs {
		t.Fatalf("slowest not sorted: %v then %v", slowest[0].DurMs, slowest[1].DurMs)
	}
}

func TestLatencySetFlatten(t *testing.T) {
	l := NewLatencySet()
	for i := 0; i < 100; i++ {
		l.Observe("submit_ms/policy=ewma/outcome=ok", time.Duration(i)*time.Millisecond)
	}
	m := l.Flatten("gw/")
	if m["gw/submit_ms/policy=ewma/outcome=ok/count"] != 100 {
		t.Fatalf("count missing: %v", m)
	}
	p50 := m["gw/submit_ms/policy=ewma/outcome=ok/p50"]
	p99 := m["gw/submit_ms/policy=ewma/outcome=ok/p99"]
	if p50 < 25 || p50 > 75 {
		t.Fatalf("p50 = %v, want ~50", p50)
	}
	if p99 < p50 || p99 > 99 {
		t.Fatalf("p99 = %v (p50 %v)", p99, p50)
	}
	// Detached set is a no-op.
	var nilSet *LatencySet
	nilSet.Observe("x", time.Second)
	if nilSet.Flatten("") != nil {
		t.Fatalf("nil LatencySet should flatten to nil")
	}
}

func TestDebugEndpoints(t *testing.T) {
	tr, _ := newTestTracer(Config{Component: "pasmd", Sample: 1})
	r := tr.Start("", "submit")
	r.Span("queue").Attr("depth", 1).EndSpan()
	runSpan := r.Span("run").OnTrack("worker")
	// Attach a small simulated stream so the perfetto export carries
	// both clock domains.
	rec := obs.New(obs.Config{Events: obs.AllKinds, Limit: 64})
	pe := rec.Unit("PE0")
	rec.Emit(pe, obs.Event{Kind: obs.KindInstr, Clock: 40, Dur: 40, Arg: int64(0)})
	rec.Emit(pe, obs.Event{Kind: obs.KindBarrierArrive, Clock: 50})
	rec.Finish(pe, 50, 1)
	cap := r.NewSimCapture()
	cap.Offer(rec)
	runSpan.EndSpan()
	r.AttachSim(cap, runSpan.Start, runSpan.End)
	r.Finish()

	mux := http.NewServeMux()
	tr.Register(mux)

	// List, JSON.
	w := httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests", nil))
	if w.Code != 200 {
		t.Fatalf("list status %d: %s", w.Code, w.Body)
	}
	var list struct {
		Recent []ReqSnapshot `json:"recent"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &list); err != nil {
		t.Fatalf("list not JSON: %v", err)
	}
	if len(list.Recent) != 1 || list.Recent[0].Trace != r.Trace {
		t.Fatalf("list recent wrong: %+v", list.Recent)
	}
	if list.Recent[0].SimCells != 1 {
		t.Fatalf("sim cells not exported: %+v", list.Recent[0])
	}

	// List, text.
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests?format=text", nil))
	if w.Code != 200 || !strings.Contains(w.Body.String(), r.Trace) {
		t.Fatalf("text list missing trace: %d %s", w.Code, w.Body)
	}

	// Single request.
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests/"+r.Trace, nil))
	if w.Code != 200 {
		t.Fatalf("single status %d", w.Code)
	}
	var snap ReqSnapshot
	if err := json.Unmarshal(w.Body.Bytes(), &snap); err != nil || len(snap.Spans) != 2 {
		t.Fatalf("single snapshot: err=%v spans=%d", err, len(snap.Spans))
	}

	// Perfetto merge: valid Chrome trace with both domains present.
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests/"+r.Trace+"/perfetto", nil))
	if w.Code != 200 {
		t.Fatalf("perfetto status %d: %s", w.Code, w.Body)
	}
	n, err := obs.ValidateChromeTrace(w.Body.Bytes())
	if err != nil {
		t.Fatalf("perfetto invalid: %v", err)
	}
	if n == 0 {
		t.Fatalf("perfetto empty")
	}
	body := w.Body.String()
	for _, want := range []string{`"queue"`, `"run"`, "simulated clock (cell 0)", "barrier-arrive"} {
		if !strings.Contains(body, want) {
			t.Fatalf("perfetto missing %q", want)
		}
	}

	// Unknown trace 404s.
	w = httptest.NewRecorder()
	mux.ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests/ffffffffffffffff", nil))
	if w.Code != 404 {
		t.Fatalf("unknown trace status %d", w.Code)
	}
}

func TestSimAlignment(t *testing.T) {
	tr, _ := newTestTracer(Config{Component: "pasmd", Sample: 1})
	r := tr.Start("", "submit")
	run := r.Span("run")
	rec := obs.New(obs.Config{Events: obs.AllKinds})
	pe := rec.Unit("PE0")
	rec.Emit(pe, obs.Event{Kind: obs.KindBarrierArrive, Clock: 100})
	rec.Finish(pe, 100, 1)
	cap := r.NewSimCapture()
	cap.Offer(rec)
	run.EndSpan()
	r.AttachSim(cap, run.Start, run.End)
	r.Finish()
	snap := r.Snapshot()

	var buf strings.Builder
	if err := WritePerfetto(&buf, snap); err != nil {
		t.Fatalf("WritePerfetto: %v", err)
	}
	var doc struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(buf.String()), &doc); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	// The final simulated cycle must land at the end of the run span's
	// host interval: sim events stay inside the serving span.
	var runStart, runEnd float64
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name == "run" && ev.Pid == 0 {
			runStart, runEnd = ev.Ts, ev.Ts+ev.Dur
		}
	}
	if runEnd <= runStart {
		t.Fatalf("run span not found")
	}
	for _, ev := range doc.TraceEvents {
		if ev.Pid >= 1 && ev.Ph != "M" {
			if ev.Ts < runStart-0.001 || ev.Ts > runEnd+0.001 {
				t.Fatalf("sim event at %v outside run span [%v, %v]", ev.Ts, runStart, runEnd)
			}
		}
	}
}

// TestDetachedTelemetryZeroAlloc pins the detached-path cost promised
// by the package doc: with tracing off (nil *Tracer / nil *Req), the
// full span choreography of a request must not allocate — mirroring
// the obs hook guard on the interpreter's steady state.
func TestDetachedTelemetryZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		r := tr.Start("", "submit")
		s := r.Span("queue").Attr("depth", 3)
		s.EndSpan()
		run := r.SpanAt("run", time.Time{}).OnTrack("worker").Attr("cache", "hit")
		run.EndAt(time.Time{})
		cap := r.NewSimCapture()
		cap.Offer(nil)
		r.AttachSim(cap, time.Time{}, time.Time{})
		if r.HeaderValue() != "" {
			t.Fatal("nil req must render empty header")
		}
		r.Finish()
	})
	if allocs != 0 {
		t.Fatalf("detached telemetry allocated %.1f per request, want 0", allocs)
	}
}
