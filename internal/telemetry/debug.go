package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
)

// Register mounts the tracer's debug endpoints on mux:
//
//	GET /debug/requests                  — retained request timelines
//	                                       (JSON; ?format=text for humans)
//	GET /debug/requests/{trace}          — one request's full timeline
//	GET /debug/requests/{trace}/perfetto — merged host+sim Chrome trace
//
// Safe on a nil tracer (endpoints report tracing disabled).
func (t *Tracer) Register(mux *http.ServeMux) {
	mux.HandleFunc("/debug/requests", t.handleList)
	mux.HandleFunc("/debug/requests/", t.handleOne)
}

func (t *Tracer) handleList(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if t == nil {
		http.Error(w, "tracing disabled", http.StatusNotFound)
		return
	}
	recent, slowest := t.Requests()
	started, finished, unsampled := t.Stats()
	if req.URL.Query().Get("format") == "text" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "component %s: %d traces started, %d finished, %d unsampled\n",
			t.cfg.Component, started, finished, unsampled)
		writeText := func(title string, list []ReqSnapshot) {
			fmt.Fprintf(w, "\n%s (%d):\n", title, len(list))
			for _, r := range list {
				fmt.Fprintf(w, "  %s  %-12s %8.3fms  %d spans  %s\n",
					r.Trace, r.Name, r.DurMs, len(r.Spans), r.Start)
				for _, s := range r.Spans {
					fmt.Fprintf(w, "    %10.1fus +%10.1fus  [%s] %s%s\n",
						s.StartUs, s.DurUs, s.Track, s.Name, attrText(s.Attrs))
				}
			}
		}
		writeText("recent", recent)
		writeText("slowest", slowest)
		return
	}
	writeJSON(w, map[string]any{
		"component": t.cfg.Component,
		"started":   started,
		"finished":  finished,
		"unsampled": unsampled,
		"recent":    emptyNotNil(recent),
		"slowest":   emptyNotNil(slowest),
	})
}

func (t *Tracer) handleOne(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	rest := strings.TrimPrefix(req.URL.Path, "/debug/requests/")
	trace, verb, _ := strings.Cut(rest, "/")
	r := t.Lookup(trace) // nil-safe on a nil tracer
	if r == nil {
		http.Error(w, "trace not found", http.StatusNotFound)
		return
	}
	snap := r.Snapshot()
	switch verb {
	case "":
		writeJSON(w, snap)
	case "perfetto":
		w.Header().Set("Content-Type", "application/json")
		if err := WritePerfetto(w, snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	default:
		http.Error(w, "unknown view "+verb, http.StatusNotFound)
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func emptyNotNil(list []ReqSnapshot) []ReqSnapshot {
	if list == nil {
		return []ReqSnapshot{}
	}
	return list
}

func attrText(attrs []Attr) string {
	if len(attrs) == 0 {
		return ""
	}
	parts := make([]string, len(attrs))
	for i, a := range attrs {
		parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value)
	}
	return " " + strings.Join(parts, " ")
}
