// Package telemetry is the serving stack's request-scoped tracing
// layer: where package obs explains a *simulation* on the simulated
// clock, telemetry explains a *request* on the host clock — how long
// it sat in the gateway's routing loop, the service's admission queue,
// and the worker's execution slot, and why.
//
// A trace is born at whichever hop first decides to record (the client
// or the gateway inject, the service continues) and rides the
// X-Pasm-Trace header across process boundaries. Each hop holds a
// Tracer; a traced request becomes a Req carrying Spans — named
// host-time intervals with ordered attributes (route policy, failover
// hops, queue depth at admit, coalesce fan-in, cache hit/miss). The
// tracer retains the last N and the slowest N finished requests in
// ring buffers for /debug/requests (à la x/net/trace), and a traced
// run can capture its simulated-clock obs event stream so one exported
// Perfetto file shows serving spans and PE/FU/barrier events on
// aligned tracks (see perfetto.go).
//
// The discipline mirrors the obs hooks: a detached tracer (nil
// *Tracer) or an unsampled request (nil *Req) costs one pointer test
// per site — every method on *Req and *Span is nil-receiver safe and
// allocation-free when detached, which TestDetachedTelemetryZeroAlloc
// pins.
package telemetry

import (
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Header carries the trace context between hops. Its value is
// "<trace-id>/<parent-span-id>": a 16-hex-digit trace identity and the
// 8-hex-digit span the downstream hop should parent its spans to (the
// parent part may be absent on a root context).
const Header = "X-Pasm-Trace"

// Context is a propagated trace identity: which trace this request
// belongs to and which upstream span caused it.
type Context struct {
	Trace  string // 16 hex digits
	Parent string // 8 hex digits; "" at the root
}

// ParseHeader decodes an X-Pasm-Trace value. Malformed values report
// !ok and the request proceeds untraced — a bad header must never
// reject a request.
func ParseHeader(v string) (Context, bool) {
	if v == "" {
		return Context{}, false
	}
	trace, parent, _ := strings.Cut(v, "/")
	if !isHex(trace, 16) || (parent != "" && !isHex(parent, 8)) {
		return Context{}, false
	}
	return Context{Trace: trace, Parent: parent}, true
}

// Header renders the context as the X-Pasm-Trace value.
func (c Context) Header() string {
	if c.Parent == "" {
		return c.Trace
	}
	return c.Trace + "/" + c.Parent
}

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for i := 0; i < n; i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Config tunes a Tracer.
type Config struct {
	// Component names this hop in spans and logs ("pasmd"/"pasmgw",
	// optionally suffixed with the instance name).
	Component string
	// Sample is the probability ([0,1]) of tracing a request that
	// arrives without an X-Pasm-Trace header. Requests carrying a valid
	// header are always traced — the upstream hop already paid the
	// sampling decision. 0 traces only propagated contexts.
	Sample float64
	// Ring bounds the most-recent finished requests retained for
	// /debug/requests. Default 64.
	Ring int
	// Slow bounds the slowest finished requests retained alongside the
	// ring. Default 16.
	Slow int
	// MaxActive bounds requests started but not yet finished (leak
	// protection for callers that lose a Req). Default 4*Ring.
	MaxActive int
	// SimCells bounds how many experiment cells' simulated event
	// streams one traced request captures. Default 1.
	SimCells int
	// SimEvents bounds the per-unit simulated event ring of a captured
	// cell. Default 4096.
	SimEvents int
	// Seed drives the deterministic sampling sequence (xorshift64).
	Seed uint64
	// Logger, when non-nil, receives one structured line per finished
	// traced request.
	Logger *slog.Logger

	now func() time.Time
}

// Tracer records traced requests for one component. Safe for
// concurrent use. A nil *Tracer is a valid detached tracer: every
// method no-ops and returns nil.
type Tracer struct {
	cfg Config
	log *slog.Logger
	now func() time.Time
	rng atomic.Uint64

	mu          sync.Mutex
	active      map[string]*Req // by trace id, most recent wins
	activeOrder []string
	ring        []*Req // finished, oldest first
	slow        []*Req // finished, slowest first
	started     int64
	finished    int64
	unsampled   int64
}

// New returns a tracer. cfg.Component is required context for exports
// but not enforced.
func New(cfg Config) *Tracer {
	if cfg.Ring <= 0 {
		cfg.Ring = 64
	}
	if cfg.Slow <= 0 {
		cfg.Slow = 16
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 4 * cfg.Ring
	}
	if cfg.SimCells <= 0 {
		cfg.SimCells = 1
	}
	if cfg.SimEvents <= 0 {
		cfg.SimEvents = 4096
	}
	if cfg.now == nil {
		cfg.now = time.Now
	}
	t := &Tracer{cfg: cfg, log: cfg.Logger, now: cfg.now, active: map[string]*Req{}}
	seed := cfg.Seed
	if seed == 0 {
		seed = uint64(time.Now().UnixNano()) | 1
	}
	t.rng.Store(seed)
	return t
}

// rand64 steps the shared xorshift64 state (lock-free, deterministic
// per seed).
func (t *Tracer) rand64() uint64 {
	for {
		old := t.rng.Load()
		x := old
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		if x == 0 {
			x = 0x9e3779b97f4a7c15
		}
		if t.rng.CompareAndSwap(old, x) {
			return x
		}
	}
}

// NewContext mints a root trace context (no parent span). Used by
// clients injecting a trace.
func (t *Tracer) NewContext() Context {
	return Context{Trace: fmt.Sprintf("%016x", t.rand64())}
}

// SampleContext makes one injection-side sampling decision: when this
// request should carry a trace, it returns a minted root context and
// true. Used by clients (and loadgen) that inject traces without
// recording spans of their own.
func (t *Tracer) SampleContext() (Context, bool) {
	if t == nil || !t.sampleHit() {
		return Context{}, false
	}
	return t.NewContext(), true
}

// SampleHit reports one sampling decision against cfg.Sample.
func (t *Tracer) sampleHit() bool {
	if t.cfg.Sample >= 1 {
		return true
	}
	if t.cfg.Sample <= 0 {
		return false
	}
	return float64(t.rand64()>>11)/(1<<53) < t.cfg.Sample
}

// Start begins a traced request from a propagated header value. A
// valid header always traces (the upstream hop made the sampling
// decision); an empty or malformed one traces with probability
// cfg.Sample. Returns nil — the universal "not traced" value every
// downstream method accepts — when detached or unsampled.
func (t *Tracer) Start(header, name string) *Req {
	if t == nil {
		return nil
	}
	ctx, ok := ParseHeader(header)
	if !ok {
		if !t.sampleHit() {
			t.mu.Lock()
			t.unsampled++
			t.mu.Unlock()
			return nil
		}
		ctx = t.NewContext()
	}
	r := &Req{
		t:         t,
		Trace:     ctx.Trace,
		Parent:    ctx.Parent,
		Name:      name,
		Component: t.cfg.Component,
		Start:     t.now(),
		root:      fmt.Sprintf("%08x", uint32(t.rand64())),
	}
	t.mu.Lock()
	t.started++
	t.active[r.Trace] = r
	t.activeOrder = append(t.activeOrder, r.Trace)
	for len(t.activeOrder) > t.cfg.MaxActive {
		evict := t.activeOrder[0]
		t.activeOrder = t.activeOrder[1:]
		// Finished requests were already removed by finish(); only drop
		// a still-active leak, and never the request just started.
		if cur, ok := t.active[evict]; ok && cur != r {
			delete(t.active, evict)
		}
	}
	t.mu.Unlock()
	return r
}

// Lookup returns the most recent request recorded under a trace id
// (active or retained), or nil.
func (t *Tracer) Lookup(trace string) *Req {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.active[trace]; ok {
		return r
	}
	for i := len(t.ring) - 1; i >= 0; i-- {
		if t.ring[i].Trace == trace {
			return t.ring[i]
		}
	}
	for _, r := range t.slow {
		if r.Trace == trace {
			return r
		}
	}
	return nil
}

// finish moves a completed request into the retention rings.
func (t *Tracer) finish(r *Req) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.finished++
	if cur, ok := t.active[r.Trace]; ok && cur == r {
		delete(t.active, r.Trace)
	}
	t.ring = append(t.ring, r)
	if len(t.ring) > t.cfg.Ring {
		t.ring = t.ring[1:]
	}
	// Insertion into the slowest list, longest duration first.
	d := r.Duration()
	at := len(t.slow)
	for i, s := range t.slow {
		if d > s.Duration() {
			at = i
			break
		}
	}
	if at < t.cfg.Slow {
		t.slow = append(t.slow, nil)
		copy(t.slow[at+1:], t.slow[at:])
		t.slow[at] = r
		if len(t.slow) > t.cfg.Slow {
			t.slow = t.slow[:t.cfg.Slow]
		}
	}
	if t.log != nil {
		// No component field: Config.Logger already carries the caller's
		// identity context.
		t.log.Info("request traced",
			"trace", r.Trace,
			"name", r.Name,
			"ms", float64(d.Microseconds())/1000,
			"spans", r.spanCount())
	}
}

// Requests snapshots the retained requests: the last-N ring (newest
// first) and the slowest-N list (slowest first). The two may overlap.
func (t *Tracer) Requests() (recent, slowest []ReqSnapshot) {
	if t == nil {
		return nil, nil
	}
	t.mu.Lock()
	ring := append([]*Req(nil), t.ring...)
	slow := append([]*Req(nil), t.slow...)
	t.mu.Unlock()
	for i := len(ring) - 1; i >= 0; i-- {
		recent = append(recent, ring[i].Snapshot())
	}
	for _, r := range slow {
		slowest = append(slowest, r.Snapshot())
	}
	return recent, slowest
}

// Stats reports the tracer's lifetime counters.
func (t *Tracer) Stats() (started, finished, unsampled int64) {
	if t == nil {
		return 0, 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.started, t.finished, t.unsampled
}

// Metrics renders the tracer counters under prefix (for /metrics).
func (t *Tracer) Metrics(prefix string) map[string]float64 {
	if t == nil {
		return nil
	}
	started, finished, unsampled := t.Stats()
	return map[string]float64{
		prefix + "traces_started":  float64(started),
		prefix + "traces_finished": float64(finished),
		prefix + "traces_skipped":  float64(unsampled),
	}
}

// Attr is one ordered span attribute.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Span is a named host-time interval within a traced request. All
// methods are nil-receiver safe, so call sites need no tracing
// branches. A span is created by Req.Span/SpanAt and visible in
// exports once ended.
type Span struct {
	r      *Req
	ID     string
	Parent string
	Name   string
	Track  string // export track; defaults to the request's component
	Start  time.Time
	End    time.Time
	Attrs  []Attr
}

// Req is one traced request at one hop. Nil means "not traced"; every
// method on a nil *Req is a no-op costing one pointer test.
type Req struct {
	t         *Tracer
	Trace     string
	Parent    string // upstream span that caused this request
	Name      string
	Component string
	Start     time.Time

	root string // span id all this hop's spans parent to by default

	mu    sync.Mutex
	end   time.Time
	spans []*Span
	sim   []*obs.Recorder
	simT0 time.Time
	simT1 time.Time
}

// Context returns the identity downstream hops should continue: this
// trace, parented to this hop's root span.
func (r *Req) Context() Context {
	if r == nil {
		return Context{}
	}
	return Context{Trace: r.Trace, Parent: r.root}
}

// TraceID returns the trace ID, or "" when untraced — usable
// unconditionally as a structured-log field.
func (r *Req) TraceID() string {
	if r == nil {
		return ""
	}
	return r.Trace
}

// HeaderValue renders Context() for the wire ("" when untraced, which
// callers can set unconditionally — an empty header is never sent by
// net/http... callers should skip empty values).
func (r *Req) HeaderValue() string {
	if r == nil {
		return ""
	}
	return r.Context().Header()
}

// Span starts a span now.
func (r *Req) Span(name string) *Span {
	if r == nil {
		return nil
	}
	return r.SpanAt(name, r.t.now())
}

// SpanAt starts a span at an explicit host time (serving code often
// measures a stage's boundaries itself — queue wait is admit time to
// worker pickup — and reports them after the fact).
func (r *Req) SpanAt(name string, start time.Time) *Span {
	if r == nil {
		return nil
	}
	s := &Span{
		r:      r,
		ID:     fmt.Sprintf("%08x", uint32(r.t.rand64())),
		Parent: r.root,
		Name:   name,
		Track:  r.Component,
		Start:  start,
	}
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
	return s
}

// Attr appends an ordered attribute and returns the span for chaining.
func (s *Span) Attr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.r.mu.Lock()
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	s.r.mu.Unlock()
	return s
}

// OnTrack reassigns the span's export track (e.g. "worker" for the
// execution span, so serving and execution stages render as separate
// Perfetto threads).
func (s *Span) OnTrack(track string) *Span {
	if s == nil {
		return nil
	}
	s.r.mu.Lock()
	s.Track = track
	s.r.mu.Unlock()
	return s
}

// EndSpan ends the span now.
func (s *Span) EndSpan() {
	if s == nil {
		return
	}
	s.EndAt(s.r.t.now())
}

// EndAt ends the span at an explicit host time.
func (s *Span) EndAt(end time.Time) {
	if s == nil {
		return
	}
	s.r.mu.Lock()
	s.End = end
	s.r.mu.Unlock()
}

// NewSimCapture returns a bounded capture for the request's simulated
// event streams (nil when untraced — experiments treat a nil capture
// as "retain nothing", keeping the detached path free).
func (r *Req) NewSimCapture() *obs.Capture {
	if r == nil {
		return nil
	}
	return obs.NewCapture(r.t.cfg.SimCells, r.t.cfg.SimEvents)
}

// AttachSim links captured simulated-clock streams to the request,
// anchored to the host interval [start, end] they were recorded in
// (the run span's bounds). The Perfetto export aligns the simulated
// tracks onto this interval.
func (r *Req) AttachSim(c *obs.Capture, start, end time.Time) {
	if r == nil || c == nil {
		return
	}
	cells := c.Cells()
	if len(cells) == 0 {
		return
	}
	r.mu.Lock()
	r.sim = cells
	r.simT0, r.simT1 = start, end
	r.mu.Unlock()
}

// Finish completes the request and hands it to the tracer's retention
// rings.
func (r *Req) Finish() {
	if r == nil {
		return
	}
	r.FinishAt(r.t.now())
}

// FinishAt completes the request at an explicit host time.
func (r *Req) FinishAt(end time.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	already := !r.end.IsZero()
	if !already {
		r.end = end
	}
	r.mu.Unlock()
	if !already {
		r.t.finish(r)
	}
}

func (r *Req) spanCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Duration is the request's total host time (zero until finished).
func (r *Req) Duration() time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.end.IsZero() {
		return 0
	}
	return r.end.Sub(r.Start)
}

// SpanSnapshot is one finished span in export form.
type SpanSnapshot struct {
	ID      string  `json:"id"`
	Parent  string  `json:"parent,omitempty"`
	Name    string  `json:"name"`
	Track   string  `json:"track"`
	StartUs float64 `json:"start_us"` // offset from the request start
	DurUs   float64 `json:"dur_us"`
	Attrs   []Attr  `json:"attrs,omitempty"`
}

// ReqSnapshot is an immutable copy of a traced request for export.
type ReqSnapshot struct {
	Trace     string         `json:"trace"`
	Parent    string         `json:"parent,omitempty"`
	Name      string         `json:"name"`
	Component string         `json:"component"`
	Start     string         `json:"start"`
	DurMs     float64        `json:"dur_ms"`
	Done      bool           `json:"done"`
	Spans     []SpanSnapshot `json:"spans"`
	SimCells  int            `json:"sim_cells,omitempty"`

	start time.Time
	end   time.Time
	sim   []*obs.Recorder
	simT0 time.Time
	simT1 time.Time
}

// Snapshot copies the request's current state (finished spans only).
func (r *Req) Snapshot() ReqSnapshot {
	if r == nil {
		return ReqSnapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := ReqSnapshot{
		Trace:     r.Trace,
		Parent:    r.Parent,
		Name:      r.Name,
		Component: r.Component,
		Start:     r.Start.UTC().Format(time.RFC3339Nano),
		Done:      !r.end.IsZero(),
		SimCells:  len(r.sim),
		start:     r.Start,
		end:       r.end,
		sim:       r.sim,
		simT0:     r.simT0,
		simT1:     r.simT1,
	}
	if out.Done {
		out.DurMs = float64(r.end.Sub(r.Start).Microseconds()) / 1000
	}
	for _, s := range r.spans {
		if s.End.IsZero() {
			continue
		}
		out.Spans = append(out.Spans, SpanSnapshot{
			ID:      s.ID,
			Parent:  s.Parent,
			Name:    s.Name,
			Track:   s.Track,
			StartUs: float64(s.Start.Sub(r.Start).Nanoseconds()) / 1000,
			DurUs:   float64(s.End.Sub(s.Start).Nanoseconds()) / 1000,
			Attrs:   append([]Attr(nil), s.Attrs...),
		})
	}
	return out
}
