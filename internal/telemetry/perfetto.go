package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/obs"
)

// WritePerfetto renders a traced request as one Chrome trace-event
// file bridging both clock domains: pid 0 holds the host-time serving
// spans (one thread per span track — gateway, service, worker), and
// pids 1..N hold the request's captured simulated-clock cell streams
// with their cycle timestamps linearly mapped onto the host interval
// of the run they were recorded in. Timestamps are microseconds from
// the request start, so Perfetto shows "where the 80ms went" — routing
// vs queueing vs simulation — and, inside the run span, which PE/FU/
// barrier activity filled it.
func WritePerfetto(w io.Writer, snap ReqSnapshot) error {
	evs := []obs.TraceEvent{{
		Name: "process_name", Ph: "M", Pid: 0, Tid: 0,
		Args: map[string]any{"name": "serving " + snap.Component},
	}}

	// Stable track order: tracks in first-appearance order over spans.
	var tracks []string
	trackTid := map[string]int{}
	for _, s := range snap.Spans {
		if _, ok := trackTid[s.Track]; !ok {
			trackTid[s.Track] = len(tracks)
			tracks = append(tracks, s.Track)
		}
	}
	for tid, name := range tracks {
		evs = append(evs, obs.TraceEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": name},
		})
		evs = append(evs, obs.TraceEvent{
			Name: "thread_sort_index", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"sort_index": tid},
		})
	}
	// The request itself as the root slice on the first track.
	if snap.Done {
		evs = append(evs, obs.TraceEvent{
			Name: snap.Name, Cat: "request", Ph: "X",
			Ts: 0, Dur: snap.DurMs * 1000, Pid: 0, Tid: 0,
			Args: map[string]any{"trace": snap.Trace},
		})
	}
	spans := append([]SpanSnapshot(nil), snap.Spans...)
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].StartUs < spans[j].StartUs })
	for _, s := range spans {
		args := map[string]any{"span": s.ID}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		evs = append(evs, obs.TraceEvent{
			Name: s.Name, Cat: "span", Ph: "X",
			Ts: s.StartUs, Dur: s.DurUs,
			Pid: 0, Tid: trackTid[s.Track],
			Args: args,
		})
	}

	// Simulated cells: one process each, cycle clock affinely mapped
	// onto the host interval the capture was recorded in.
	for i, rec := range snap.sim {
		pid := 1 + i
		evs = append(evs, obs.TraceEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": fmt.Sprintf("simulated clock (cell %d)", i)},
		})
		evs = append(evs, obs.ChromeEvents(rec, nil, pid, 0, simTransform(rec, snap))...)
	}

	buf, err := json.MarshalIndent(obs.ChromeTrace{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		Comment:         "pid 0: host-time serving spans (us from request start); pid 1+: simulated-clock cell events aligned onto the run interval",
	}, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// simTransform maps a captured recorder's simulated clock onto the
// request's host microsecond axis: cycle 0 lands at the start of the
// capture's host interval and the recorder's final cycle at its end.
// Degenerate cases (no cycles, no interval) collapse onto the interval
// start so events stay inside the request either way.
func simTransform(rec *obs.Recorder, snap ReqSnapshot) func(int64) float64 {
	t0us := float64(snap.simT0.Sub(snap.start).Nanoseconds()) / 1000
	t1us := float64(snap.simT1.Sub(snap.start).Nanoseconds()) / 1000
	var maxClock int64
	for _, ev := range rec.Merged() {
		if ev.Clock > maxClock {
			maxClock = ev.Clock
		}
	}
	if maxClock <= 0 || t1us <= t0us {
		return func(int64) float64 { return t0us }
	}
	scale := (t1us - t0us) / float64(maxClock)
	return func(clock int64) float64 { return t0us + float64(clock)*scale }
}
