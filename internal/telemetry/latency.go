package telemetry

import (
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
)

// MsBounds is the shared bucket layout for serving-path latency
// histograms, in milliseconds. It matches the service's queue_wait/run
// histograms so gateway-side and replica-side distributions merge
// bucket-by-bucket.
var MsBounds = []int64{1, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 15000}

// Quantiles are the derived percentile keys every latency histogram
// exports alongside its buckets.
var Quantiles = []struct {
	Key string
	Q   float64
}{
	{"p50", 0.50},
	{"p95", 0.95},
	{"p99", 0.99},
}

// LatencySet is a concurrent family of millisecond latency histograms
// keyed by a caller-chosen name (the gateway keys by
// "submit_ms/policy=<p>/outcome=<o>"). Unlike obs.Registry it is safe
// for concurrent Observe from request goroutines.
type LatencySet struct {
	mu    sync.Mutex
	hists map[string]*obs.Histogram
}

// NewLatencySet returns an empty set.
func NewLatencySet() *LatencySet {
	return &LatencySet{hists: map[string]*obs.Histogram{}}
}

// Observe records one duration under name, bucketed in milliseconds.
func (l *LatencySet) Observe(name string, d time.Duration) {
	if l == nil {
		return
	}
	ms := d.Milliseconds()
	l.mu.Lock()
	h, ok := l.hists[name]
	if !ok {
		h = obs.NewHistogram(MsBounds)
		l.hists[name] = h
	}
	h.Observe(ms)
	l.mu.Unlock()
}

// Flatten renders every histogram under prefix in the /metrics scalar
// style: count/sum/mean/min/max, non-empty le=N buckets, overflow, and
// derived p50/p95/p99.
func (l *LatencySet) Flatten(prefix string) map[string]float64 {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	m := map[string]float64{}
	for name, h := range l.hists {
		flattenHistogram(m, prefix+name, h)
	}
	return m
}

// flattenHistogram renders one histogram as scalar metrics under key,
// matching obs.Registry.Flatten's bucket naming plus quantiles.
func flattenHistogram(m map[string]float64, key string, h *obs.Histogram) {
	if h.N == 0 {
		return
	}
	m[key+"/count"] = float64(h.N)
	m[key+"/sum"] = float64(h.Sum)
	m[key+"/mean"] = h.Mean()
	m[key+"/min"] = float64(h.Min)
	m[key+"/max"] = float64(h.Max)
	for i, b := range h.Bounds {
		if h.Counts[i] != 0 {
			m[key+"/le="+strconv.FormatInt(b, 10)] = float64(h.Counts[i])
		}
	}
	if c := h.Counts[len(h.Counts)-1]; c != 0 {
		m[key+"/overflow"] = float64(c)
	}
	for _, q := range Quantiles {
		m[key+"/"+q.Key] = h.Quantile(q.Q)
	}
}

// FlattenHistogram renders one histogram under key with buckets and
// derived quantiles (the service uses it for its own registry hists).
func FlattenHistogram(m map[string]float64, key string, h *obs.Histogram) {
	flattenHistogram(m, key, h)
}
