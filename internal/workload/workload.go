// Package workload is the open-loop traffic engine: multi-client
// cohorts with renewal-process arrivals (Poisson, Gamma, Weibull),
// weighted spec mixes, and diurnal rate ramps, all drawn from
// deterministic per-cohort PRNG streams. Generate produces a recorded
// trace (workload/tracev1 JSON lines) that replays
// byte-deterministically: same config + seed, same bytes, on every
// machine and Go release.
//
// Open-loop matters: a closed-loop client (wait for response, send
// next) self-throttles when the server slows down, hiding exactly the
// queueing collapse the SLO experiments need to provoke. Here arrival
// times are drawn up front, independent of service times.
package workload

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/experiments"
)

// MixEntry is one weighted choice in a cohort's spec mix.
type MixEntry struct {
	Weight float64
	Spec   experiments.Spec
}

// Ramp modulates a cohort's arrival rate over the run: factor(t) =
// 1 + Amplitude*sin(2πt/Period), clamped to ≥ 0.05 so the process
// never stalls. The zero value is the identity (flat rate).
type Ramp struct {
	Amplitude float64
	Period    time.Duration
}

func (r Ramp) factor(t time.Duration) float64 {
	if r.Amplitude == 0 || r.Period <= 0 {
		return 1
	}
	f := 1 + r.Amplitude*math.Sin(2*math.Pi*float64(t)/float64(r.Period))
	if f < 0.05 {
		f = 0.05
	}
	return f
}

// Cohort describes one client population sharing an arrival process,
// a spec mix, and an SLO class.
type Cohort struct {
	// Name keys the cohort's PRNG stream: arrivals depend only on
	// (seed, name, cohort params), never on sibling cohorts.
	Name string
	// Clients is the population size; requests carry client IDs
	// "name-0" .. "name-(Clients-1)", drawn uniformly.
	Clients int
	// Process is the inter-arrival law: "poisson" (default), "gamma",
	// or "weibull". Shape parameterizes the latter two; shape < 1
	// gives the bursty, heavy-tailed arrivals the paper's
	// non-deterministic instruction times amplify.
	Process string
	Shape   float64
	// RateRPS is the cohort's aggregate mean arrival rate.
	RateRPS float64
	// Class and SLOMs are stamped on every request the cohort emits.
	Class string
	SLOMs int64
	// Mix is the weighted spec distribution (at least one entry).
	Mix []MixEntry
	// Ramp optionally modulates RateRPS over the run.
	Ramp Ramp
	// VarySeed rewrites each request's spec seed from the cohort
	// stream, so requests are distinct cache keys (a cold-path storm)
	// instead of one key served from cache after the first hit.
	VarySeed bool
}

// GenConfig drives Generate.
type GenConfig struct {
	// Name labels the trace header.
	Name string
	// Seed is the base seed; each cohort stream derives from it.
	Seed int64
	// Duration bounds arrival times: every request lands in
	// [0, Duration).
	Duration time.Duration
	Cohorts  []Cohort
}

func (c *Cohort) validate() error {
	if c.Name == "" {
		return fmt.Errorf("workload: cohort with empty name")
	}
	if c.Clients < 1 {
		return fmt.Errorf("workload: cohort %s: clients %d < 1", c.Name, c.Clients)
	}
	if c.RateRPS <= 0 {
		return fmt.Errorf("workload: cohort %s: rate %g rps must be positive", c.Name, c.RateRPS)
	}
	switch c.Process {
	case "", "poisson", "gamma", "weibull":
	default:
		return fmt.Errorf("workload: cohort %s: unknown process %q (want poisson, gamma, or weibull)", c.Name, c.Process)
	}
	if len(c.Mix) == 0 {
		return fmt.Errorf("workload: cohort %s: empty spec mix", c.Name)
	}
	var total float64
	for i, m := range c.Mix {
		if m.Weight <= 0 {
			return fmt.Errorf("workload: cohort %s: mix entry %d has weight %g (must be positive)", c.Name, i, m.Weight)
		}
		total += m.Weight
		if _, err := m.Spec.Normalize(); err != nil {
			return fmt.Errorf("workload: cohort %s: mix entry %d: %w", c.Name, i, err)
		}
	}
	if total <= 0 {
		return fmt.Errorf("workload: cohort %s: zero total mix weight", c.Name)
	}
	if c.SLOMs < 0 {
		return fmt.Errorf("workload: cohort %s: negative slo %d", c.Name, c.SLOMs)
	}
	return nil
}

// gap draws one mean-1 inter-arrival sample for the cohort's process.
func (c *Cohort) gap(st *Stream) float64 {
	switch c.Process {
	case "gamma":
		shape := c.Shape
		if shape <= 0 {
			shape = 1
		}
		return st.Gamma(shape) / shape // Gamma(k,1) has mean k
	case "weibull":
		shape := c.Shape
		if shape <= 0 {
			shape = 1
		}
		return st.Weibull(shape) / math.Gamma(1+1/shape) // normalize mean to 1
	default: // poisson
		return st.Exp()
	}
}

// pick draws one spec from the weighted mix.
func (c *Cohort) pick(st *Stream) experiments.Spec {
	var total float64
	for _, m := range c.Mix {
		total += m.Weight
	}
	u := st.Float64() * total
	for _, m := range c.Mix {
		if u < m.Weight {
			return m.Spec
		}
		u -= m.Weight
	}
	return c.Mix[len(c.Mix)-1].Spec
}

// Generate draws the full trace for the config. Deterministic: the
// output bytes are a pure function of cfg. Cohorts are generated
// independently on their own streams, then merged by arrival time
// (ties broken by cohort order, then per-cohort sequence), so editing
// one cohort never reshuffles another's arrivals.
func Generate(cfg GenConfig) (*Trace, error) {
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("workload: duration %s must be positive", cfg.Duration)
	}
	if len(cfg.Cohorts) == 0 {
		return nil, fmt.Errorf("workload: no cohorts")
	}
	seen := map[string]bool{}
	for i := range cfg.Cohorts {
		c := &cfg.Cohorts[i]
		if err := c.validate(); err != nil {
			return nil, err
		}
		if seen[c.Name] {
			return nil, fmt.Errorf("workload: duplicate cohort name %q", c.Name)
		}
		seen[c.Name] = true
	}

	type arrival struct {
		atUS   int64
		cohort int
		seq    int // per-cohort arrival index, for stable ties
		req    Request
	}
	var all []arrival
	for ci := range cfg.Cohorts {
		c := &cfg.Cohorts[ci]
		st := NewStream(cfg.Seed, c.Name)
		t := time.Duration(0)
		for seq := 0; ; seq++ {
			// Mean inter-arrival shrinks where the ramp boosts the rate.
			mean := float64(time.Second) / (c.RateRPS * c.Ramp.factor(t))
			t += time.Duration(c.gap(st) * mean)
			if t >= cfg.Duration {
				break
			}
			spec := c.pick(st)
			if c.VarySeed {
				spec.Seed = uint32(st.Uint64())
			}
			client := fmt.Sprintf("%s-%d", c.Name, st.Uint64()%uint64(c.Clients))
			all = append(all, arrival{
				atUS:   t.Microseconds(),
				cohort: ci,
				seq:    seq,
				req: Request{
					AtUS:   t.Microseconds(),
					Client: client,
					Class:  c.Class,
					SLOMs:  c.SLOMs,
					Spec:   spec,
				},
			})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].atUS != all[j].atUS {
			return all[i].atUS < all[j].atUS
		}
		if all[i].cohort != all[j].cohort {
			return all[i].cohort < all[j].cohort
		}
		return all[i].seq < all[j].seq
	})
	tr := &Trace{Header: Header{Version: TraceVersion, Name: cfg.Name, Seed: cfg.Seed, Requests: len(all)}}
	for i, a := range all {
		a.req.Seq = i
		tr.Requests = append(tr.Requests, a.req)
	}
	return tr, nil
}
