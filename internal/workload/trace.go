package workload

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/experiments"
)

// TraceVersion names the recorded-trace wire format. A trace is JSON
// lines: one header object, then one object per request, ordered by
// arrival time. The format is versioned in-band so a future tracev2
// can never be misread as v1, and the encoder is canonical (fixed
// field order, no insignificant whitespace), so Parse∘Encode is the
// identity on valid traces — the property the fuzz target pins.
const TraceVersion = "workload/tracev1"

// Header is the first line of a trace.
type Header struct {
	Version string `json:"version"`
	// Name labels the workload that produced the trace (free-form).
	Name string `json:"name,omitempty"`
	// Seed is the generator seed the trace was drawn with, recorded so
	// a regenerated trace can be diffed against the committed one.
	Seed int64 `json:"seed"`
	// Requests is the request-line count (integrity check on parse).
	Requests int `json:"requests"`
}

// Request is one recorded arrival.
type Request struct {
	// Seq is the arrival index; line i must carry seq i.
	Seq int `json:"seq"`
	// AtUS is the arrival offset from trace start, in microseconds.
	// Non-decreasing across the trace.
	AtUS int64 `json:"at_us"`
	// Client identifies the submitting client (admission-control key).
	Client string `json:"client"`
	// Class is the SLO class declared at submit ("" = best-effort).
	Class string `json:"class,omitempty"`
	// SLOMs is the class's latency target in milliseconds (0 = none).
	SLOMs int64 `json:"slo_ms,omitempty"`
	// Spec is what the request asks the simulator to run.
	Spec experiments.Spec `json:"spec"`
}

// Trace is a parsed recorded trace.
type Trace struct {
	Header   Header
	Requests []Request
}

// Encode renders the trace in canonical tracev1 bytes. The header's
// Version and Requests fields are forced to the truth, so an Encode
// output always re-parses.
func (t *Trace) Encode() ([]byte, error) {
	var buf bytes.Buffer
	h := t.Header
	h.Version = TraceVersion
	h.Requests = len(t.Requests)
	line, err := json.Marshal(h)
	if err != nil {
		return nil, fmt.Errorf("workload: encode header: %w", err)
	}
	buf.Write(line)
	buf.WriteByte('\n')
	for i, r := range t.Requests {
		r.Seq = i
		line, err := json.Marshal(r)
		if err != nil {
			return nil, fmt.Errorf("workload: encode request %d: %w", i, err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// Parse reads tracev1 bytes. It is strict — wrong version, out-of-order
// seq, time running backwards, a request-count mismatch, or an invalid
// spec all error — and total: no input makes it panic (fuzzed).
func Parse(data []byte) (*Trace, error) {
	t := &Trace{}
	lineNo := 0
	sawHeader := false
	var lastAt int64
	for len(data) > 0 {
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		if nl < 0 {
			line, data = data, nil
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		lineNo++
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if !sawHeader {
			if err := json.Unmarshal(line, &t.Header); err != nil {
				return nil, fmt.Errorf("workload: line %d: bad header: %w", lineNo, err)
			}
			if t.Header.Version != TraceVersion {
				return nil, fmt.Errorf("workload: line %d: version %q, want %q", lineNo, t.Header.Version, TraceVersion)
			}
			sawHeader = true
			continue
		}
		var r Request
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("workload: line %d: bad request: %w", lineNo, err)
		}
		if r.Seq != len(t.Requests) {
			return nil, fmt.Errorf("workload: line %d: seq %d, want %d", lineNo, r.Seq, len(t.Requests))
		}
		if r.AtUS < lastAt {
			return nil, fmt.Errorf("workload: line %d: at_us %d before previous %d", lineNo, r.AtUS, lastAt)
		}
		if r.Client == "" {
			return nil, fmt.Errorf("workload: line %d: empty client", lineNo)
		}
		if r.SLOMs < 0 {
			return nil, fmt.Errorf("workload: line %d: negative slo_ms %d", lineNo, r.SLOMs)
		}
		if _, err := r.Spec.Normalize(); err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", lineNo, err)
		}
		lastAt = r.AtUS
		t.Requests = append(t.Requests, r)
	}
	if !sawHeader {
		return nil, fmt.Errorf("workload: empty trace (no header line)")
	}
	if t.Header.Requests != len(t.Requests) {
		return nil, fmt.Errorf("workload: header says %d requests, trace has %d", t.Header.Requests, len(t.Requests))
	}
	return t, nil
}
