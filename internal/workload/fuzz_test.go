package workload

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzTraceRoundTrip pins the two total-function properties of the
// trace codec: no input panics Parse, and any input Parse accepts
// survives encode→parse→encode with identical bytes and identical
// structure (the canonical-form guarantee replay determinism rests
// on).
func FuzzTraceRoundTrip(f *testing.F) {
	if tr, err := Generate(testConfig()); err == nil {
		if enc, err := tr.Encode(); err == nil {
			f.Add(enc)
		}
	}
	f.Add([]byte(`{"version":"workload/tracev1","seed":1,"requests":0}`))
	f.Add([]byte(`{"version":"workload/tracev1","seed":1,"requests":1}` + "\n" +
		`{"seq":0,"at_us":10,"client":"a-0","class":"short","slo_ms":50,"spec":{"exps":["table1"],"full":false,"seed":1,"observe":false}}`))
	f.Add([]byte(`{"version":"workload/tracev2","seed":1,"requests":0}`))
	f.Add([]byte("{"))
	f.Add([]byte(""))
	f.Add([]byte("\x00\xff\xfe"))

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(data) // must never panic
		if err != nil {
			return
		}
		enc, err := tr.Encode()
		if err != nil {
			t.Fatalf("Encode failed on a trace Parse accepted: %v", err)
		}
		back, err := Parse(enc)
		if err != nil {
			t.Fatalf("Parse rejected its own encoding: %v", err)
		}
		enc2, err := back.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatal("encoding is not a fixed point: encode(parse(encode)) differs")
		}
		if !reflect.DeepEqual(tr.Requests, back.Requests) {
			t.Fatal("requests changed across round trip")
		}
	})
}
