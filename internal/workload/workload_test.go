package workload

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace")

func TestStreamDeterminism(t *testing.T) {
	a := NewStream(42, "web")
	b := NewStream(42, "web")
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with identical (seed, name) diverged at draw %d", i)
		}
	}
	c := NewStream(42, "bulk")
	d := NewStream(43, "web")
	if a.Uint64() == c.Uint64() && a.Uint64() == d.Uint64() {
		t.Fatal("distinct cohorts/seeds produced identical draws")
	}
}

// TestSamplerMeans: each normalized sampler has mean ~1 (they are the
// inter-arrival laws; Generate scales them by 1/rate, so a wrong mean
// silently mis-calibrates every cohort's rate).
func TestSamplerMeans(t *testing.T) {
	const n = 200000
	check := func(name string, mean float64) {
		if math.Abs(mean-1) > 0.03 {
			t.Errorf("%s sample mean %.4f, want ~1", name, mean)
		}
	}
	st := NewStream(7, "means")
	var sum float64
	for i := 0; i < n; i++ {
		sum += st.Exp()
	}
	check("exp", sum/n)
	for _, shape := range []float64{0.5, 2, 4} {
		sum = 0
		for i := 0; i < n; i++ {
			sum += st.Gamma(shape) / shape
		}
		check(fmt.Sprintf("gamma(%g)", shape), sum/n)
		sum = 0
		for i := 0; i < n; i++ {
			sum += st.Weibull(shape) / math.Gamma(1+1/shape)
		}
		check(fmt.Sprintf("weibull(%g)", shape), sum/n)
	}
}

func testConfig() GenConfig {
	return GenConfig{
		Name:     "test",
		Seed:     1988,
		Duration: 2 * time.Second,
		Cohorts: []Cohort{
			{
				Name: "probe", Clients: 3, Process: "poisson", RateRPS: 50,
				Class: "interactive", SLOMs: 50,
				Mix: []MixEntry{{Weight: 1, Spec: experiments.Spec{Cells: []experiments.CellSpec{{N: 8, P: 4, Muls: 1, Mode: "simd"}}}}},
			},
			{
				Name: "bulk", Clients: 2, Process: "weibull", Shape: 0.6, RateRPS: 10,
				Class: "batch",
				Ramp:  Ramp{Amplitude: 0.5, Period: time.Second},
				Mix: []MixEntry{
					{Weight: 3, Spec: experiments.Spec{Cells: []experiments.CellSpec{{N: 32, P: 16, Muls: 1, Mode: "smimd"}}}},
					{Weight: 1, Spec: experiments.Spec{Exps: []string{"table1"}}},
				},
				VarySeed: true,
			},
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t1, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	b1, err := t1.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := t2.Encode()
	if !bytes.Equal(b1, b2) {
		t.Fatal("same config generated different trace bytes")
	}
	if len(t1.Requests) == 0 {
		t.Fatal("empty trace")
	}
	// Open-loop sanity: ~rate*duration arrivals (60 rps * 2 s = 120).
	if n := len(t1.Requests); n < 60 || n > 240 {
		t.Errorf("got %d requests, want roughly 120", n)
	}
	var last int64
	for i, r := range t1.Requests {
		if r.Seq != i {
			t.Fatalf("request %d has seq %d", i, r.Seq)
		}
		if r.AtUS < last {
			t.Fatalf("request %d: time runs backwards (%d < %d)", i, r.AtUS, last)
		}
		last = r.AtUS
		if r.AtUS >= int64(2*time.Second/time.Microsecond) {
			t.Fatalf("request %d at %dus is past the duration", i, r.AtUS)
		}
		if !strings.HasPrefix(r.Client, "probe-") && !strings.HasPrefix(r.Client, "bulk-") {
			t.Fatalf("request %d has client %q outside both cohorts", i, r.Client)
		}
	}
}

// TestCohortIsolation: each cohort's arrivals are a pure function of
// (seed, its own config) — adding a second cohort must not perturb the
// first one's times or specs.
func TestCohortIsolation(t *testing.T) {
	cfg := testConfig()
	solo := cfg
	solo.Cohorts = solo.Cohorts[:1]
	both, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	alone, err := Generate(solo)
	if err != nil {
		t.Fatal(err)
	}
	var probeInBoth []Request
	for _, r := range both.Requests {
		if strings.HasPrefix(r.Client, "probe-") {
			r.Seq = 0 // global seq differs by construction; ignore
			probeInBoth = append(probeInBoth, r)
		}
	}
	var probeAlone []Request
	for _, r := range alone.Requests {
		r.Seq = 0
		probeAlone = append(probeAlone, r)
	}
	if !reflect.DeepEqual(probeInBoth, probeAlone) {
		t.Fatalf("probe cohort changed when bulk cohort was added: %d vs %d requests", len(probeInBoth), len(probeAlone))
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr, err := Generate(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(enc)
	if err != nil {
		t.Fatalf("parse of own encoding failed: %v", err)
	}
	enc2, err := back.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatal("encode(parse(encode(t))) != encode(t)")
	}
	if !reflect.DeepEqual(tr.Requests, back.Requests) {
		t.Fatal("requests changed across round trip")
	}
}

func TestParseRejects(t *testing.T) {
	good, _ := Generate(testConfig())
	enc, _ := good.Encode()
	lines := strings.Split(strings.TrimSuffix(string(enc), "\n"), "\n")
	cases := map[string]string{
		"empty":          "",
		"no header":      lines[1],
		"bad version":    strings.Replace(lines[0], TraceVersion, "workload/tracev9", 1) + "\n" + lines[1],
		"not json":       "{", // truncated header
		"count mismatch": lines[0], // header claims requests, none follow
		"seq skip":       lines[0] + "\n" + lines[2],
		"backwards time": lines[0] + "\n" + strings.Join([]string{lines[1], strings.Replace(lines[2], `"seq":1,"at_us":`, `"seq":1,"at_us":-9`, 1)}, "\n"),
	}
	for name, in := range cases {
		if _, err := Parse([]byte(in)); err == nil {
			t.Errorf("%s: Parse accepted invalid input", name)
		}
	}
}

func TestParseCohorts(t *testing.T) {
	cohorts, err := ParseCohorts(
		"name=web,clients=4,proc=poisson,rate=40,class=short,slo=50,mix=cell(8,4,1,simd):3|table1:1;" +
			"name=bulk,proc=weibull,shape=0.6,rate=5,class=batch,pes=64,amp=0.4,period=10s,varyseed=1,mix=cell(64,64,1,smimd)")
	if err != nil {
		t.Fatal(err)
	}
	if len(cohorts) != 2 {
		t.Fatalf("got %d cohorts, want 2", len(cohorts))
	}
	web := cohorts[0]
	if web.Name != "web" || web.Clients != 4 || web.RateRPS != 40 || web.Class != "short" || web.SLOMs != 50 {
		t.Errorf("web cohort parsed wrong: %+v", web)
	}
	if len(web.Mix) != 2 || web.Mix[0].Weight != 3 || web.Mix[0].Spec.Cells[0].N != 8 {
		t.Errorf("web mix parsed wrong: %+v", web.Mix)
	}
	bulk := cohorts[1]
	if bulk.Process != "weibull" || bulk.Shape != 0.6 || !bulk.VarySeed {
		t.Errorf("bulk cohort parsed wrong: %+v", bulk)
	}
	if bulk.Mix[0].Spec.PEs != 64 || bulk.Mix[0].Spec.Cells[0].P != 64 {
		t.Errorf("pes=64 not applied to bulk mix: %+v", bulk.Mix[0].Spec)
	}
	if bulk.Ramp.Amplitude != 0.4 || bulk.Ramp.Period != 10*time.Second {
		t.Errorf("ramp parsed wrong: %+v", bulk.Ramp)
	}

	for _, bad := range []string{
		"",
		"rate=5,mix=table1",                   // no name
		"name=x,mix=table1",                   // no rate
		"name=x,rate=5",                       // no mix
		"name=x,rate=5,mix=nosuchexp",         // unknown experiment
		"name=x,rate=5,mix=cell(8,4,1)",       // cell arity
		"name=x,rate=5,mix=table1,bogus=1",    // unknown key
		"name=x,rate=5,proc=pareto,mix=table1", // unknown process
		"name=x,rate=5,mix=table1;name=x,rate=5,mix=table1", // dup handled by Generate, not here
	} {
		if bad == "name=x,rate=5,mix=table1;name=x,rate=5,mix=table1" {
			// Duplicate names parse fine; Generate rejects them.
			if _, err := ParseCohorts(bad); err != nil {
				t.Errorf("ParseCohorts(%q) rejected duplicate names (Generate's job): %v", bad, err)
			}
			continue
		}
		if _, err := ParseCohorts(bad); err == nil {
			t.Errorf("ParseCohorts(%q) accepted invalid input", bad)
		}
	}
}

// goldenConfig is the config behind testdata/golden_200.tracev1 — the
// committed heavy-tailed two-class trace the scheduler's replay
// regression, slo-smoke, and the SLO bench all consume.
func goldenConfig() GenConfig {
	return GenConfig{
		Name:     "golden-200",
		Seed:     1988,
		Duration: 4 * time.Second,
		Cohorts: []Cohort{
			{
				Name: "probe", Clients: 4, Process: "poisson", RateRPS: 45,
				Class: "interactive", SLOMs: 50,
				Mix: []MixEntry{
					{Weight: 3, Spec: experiments.Spec{Cells: []experiments.CellSpec{{N: 8, P: 4, Muls: 1, Mode: "simd"}}}},
					{Weight: 1, Spec: experiments.Spec{Cells: []experiments.CellSpec{{N: 4, P: 2, Muls: 1, Mode: "mimd"}}}},
				},
				VarySeed: true,
			},
			{
				Name: "sweep", Clients: 2, Process: "weibull", Shape: 0.6, RateRPS: 12,
				Class: "batch",
				Ramp:  Ramp{Amplitude: 0.4, Period: 2 * time.Second},
				Mix: []MixEntry{
					{Weight: 2, Spec: experiments.Spec{Cells: []experiments.CellSpec{{N: 32, P: 16, Muls: 1, Mode: "smimd"}}}},
					{Weight: 1, Spec: experiments.Spec{Cells: []experiments.CellSpec{{N: 16, P: 8, Muls: 2, Mode: "mixed"}}}},
				},
				VarySeed: true,
			},
		},
	}
}

const goldenLen = 200

// goldenTrace regenerates the committed 200-request trace from its
// config (generate, truncate to exactly 200 arrivals).
func goldenTrace() (*Trace, error) {
	tr, err := Generate(goldenConfig())
	if err != nil {
		return nil, err
	}
	if len(tr.Requests) < goldenLen {
		return nil, fmt.Errorf("workload: golden config produced only %d requests, want >= %d", len(tr.Requests), goldenLen)
	}
	tr.Requests = tr.Requests[:goldenLen]
	tr.Header.Requests = goldenLen
	return tr, nil
}

// TestgoldenTrace pins the committed trace byte-for-byte to its
// generator config: if either drifts, replay regressions downstream
// would silently test a different workload. Regenerate with -update.
func TestGoldenTrace(t *testing.T) {
	tr, err := goldenTrace()
	if err != nil {
		t.Fatal(err)
	}
	enc, err := tr.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_200.tracev1")
	if *updateGolden {
		if err := os.WriteFile(path, enc, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, enc) {
		t.Fatalf("committed golden trace differs from generator output (%d vs %d bytes); run with -update if intended", len(got), len(enc))
	}
	parsed, err := Parse(got)
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Requests) != goldenLen {
		t.Fatalf("golden trace has %d requests, want %d", len(parsed.Requests), goldenLen)
	}
	classes := map[string]int{}
	for _, r := range parsed.Requests {
		classes[r.Class]++
	}
	if classes["interactive"] == 0 || classes["batch"] == 0 {
		t.Fatalf("golden trace must exercise both SLO classes, got %v", classes)
	}
}
