package workload

import "math"

// Deterministic per-cohort random streams. Every cohort owns its own
// Stream, seeded from (base seed, cohort name), so adding a cohort or
// reordering the cohort list never perturbs another cohort's arrival
// times — the property that makes recorded traces reproducible and
// diffs reviewable. The generator is xorshift64* (Vigna 2016): three
// shifts and a multiply, full 2^64-1 period, and — unlike
// math/rand — guaranteed stable output across Go releases because we
// own every line of it.

// Stream is a deterministic PRNG stream with the samplers the arrival
// processes need. The zero value is invalid; use NewStream.
type Stream struct {
	s uint64
}

// fnv64 hashes a cohort name (FNV-1a) to fold into the seed.
func fnv64(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// NewStream derives the stream for one named cohort from the base
// seed. Identical (seed, name) pairs always yield identical streams.
func NewStream(seed int64, name string) *Stream {
	s := uint64(seed) ^ fnv64(name)
	if s == 0 {
		s = 0x9e3779b97f4a7c15 // xorshift state must be non-zero
	}
	st := &Stream{s: s}
	// Warm up: the first outputs of xorshift correlate with the raw
	// seed bits; a few rounds decorrelate nearby seeds.
	for i := 0; i < 8; i++ {
		st.Uint64()
	}
	return st
}

// Uint64 advances the stream (xorshift64*).
func (st *Stream) Uint64() uint64 {
	x := st.s
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	st.s = x
	return x * 2685821657736338717
}

// Float64 returns a uniform draw in [0, 1) with 53 random bits.
func (st *Stream) Float64() float64 {
	return float64(st.Uint64()>>11) / (1 << 53)
}

// positive returns a uniform draw in (0, 1), never exactly zero, so
// log() in the inverse-CDF samplers stays finite.
func (st *Stream) positive() float64 {
	for {
		u := st.Float64()
		if u > 0 {
			return u
		}
	}
}

// Exp samples a unit-mean exponential (Poisson process inter-arrival).
func (st *Stream) Exp() float64 {
	return -math.Log(st.positive())
}

// Normal samples a standard normal via Box-Muller (the polar form
// would consume a data-dependent number of uniforms; basic Box-Muller
// always consumes exactly two, which keeps replay alignment trivial).
func (st *Stream) Normal() float64 {
	u1 := st.positive()
	u2 := st.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Gamma samples a Gamma(shape, 1) deviate via Marsaglia-Tsang, the
// standard squeeze method. shape must be > 0; values <= 0 clamp to 1
// (exponential). The boost trick handles shape < 1.
func (st *Stream) Gamma(shape float64) float64 {
	if shape <= 0 {
		shape = 1
	}
	boost := 1.0
	if shape < 1 {
		// Gamma(a) = Gamma(a+1) * U^{1/a}
		boost = math.Pow(st.positive(), 1/shape)
		shape++
	}
	d := shape - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := st.Normal()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := st.positive()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v
		}
	}
}

// Weibull samples a Weibull(shape, 1) deviate by inverse CDF. Shapes
// below 1 give the heavy-tailed bursts the SLO experiments lean on.
func (st *Stream) Weibull(shape float64) float64 {
	if shape <= 0 {
		shape = 1
	}
	return math.Pow(-math.Log(st.positive()), 1/shape)
}
