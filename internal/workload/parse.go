package workload

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
)

// ParseCohorts parses the -cohorts CLI syntax into cohort configs.
// Cohorts are ';'-separated; within a cohort, ','-separated key=value
// pairs (commas inside parentheses don't split, so cell(...) specs
// survive). Keys:
//
//	name=web            cohort name (required)
//	clients=4           client population (default 1)
//	proc=poisson        arrival process: poisson|gamma|weibull
//	shape=0.7           gamma/weibull shape
//	rate=25             aggregate arrivals per second (required)
//	class=interactive   SLO class stamped on requests
//	slo=50              SLO target, milliseconds
//	mix=table1:3|cell(8,4,1,simd):1   weighted spec mix (required)
//	pes=64              machine size for every spec in the mix
//	amp=0.5             diurnal ramp amplitude
//	period=30s          diurnal ramp period
//	varyseed=1          draw a fresh spec seed per request (cold storm)
//
// Example:
//
//	name=web,clients=4,proc=poisson,rate=40,class=short,slo=50,mix=cell(8,4,1,simd)
func ParseCohorts(s string) ([]Cohort, error) {
	var cohorts []Cohort
	for _, part := range strings.Split(s, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := parseCohort(part)
		if err != nil {
			return nil, err
		}
		cohorts = append(cohorts, c)
	}
	if len(cohorts) == 0 {
		return nil, fmt.Errorf("workload: no cohorts in %q", s)
	}
	return cohorts, nil
}

// splitOutsideParens splits on sep, ignoring separators nested inside
// parentheses — so "mix=cell(8,4,1,simd),rate=5" splits into two
// fields, not five.
func splitOutsideParens(s string, sep byte) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case sep:
			if depth == 0 {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	return append(out, s[start:])
}

func parseCohort(s string) (Cohort, error) {
	c := Cohort{Clients: 1, Process: "poisson"}
	pes := 0
	for _, kv := range splitOutsideParens(s, ',') {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return Cohort{}, fmt.Errorf("workload: cohort field %q is not key=value", kv)
		}
		key, val := strings.TrimSpace(kv[:eq]), strings.TrimSpace(kv[eq+1:])
		var err error
		switch key {
		case "name":
			c.Name = val
		case "clients":
			c.Clients, err = strconv.Atoi(val)
		case "proc", "process":
			c.Process = strings.ToLower(val)
		case "shape":
			c.Shape, err = strconv.ParseFloat(val, 64)
		case "rate":
			c.RateRPS, err = strconv.ParseFloat(val, 64)
		case "class":
			c.Class = val
		case "slo":
			c.SLOMs, err = strconv.ParseInt(val, 10, 64)
		case "mix":
			c.Mix, err = parseMix(val)
		case "pes":
			pes, err = strconv.Atoi(val)
		case "amp":
			c.Ramp.Amplitude, err = strconv.ParseFloat(val, 64)
		case "period":
			c.Ramp.Period, err = time.ParseDuration(val)
		case "varyseed":
			c.VarySeed = val == "1" || strings.EqualFold(val, "true")
		default:
			return Cohort{}, fmt.Errorf("workload: unknown cohort key %q", key)
		}
		if err != nil {
			return Cohort{}, fmt.Errorf("workload: cohort key %s=%q: %w", key, val, err)
		}
	}
	if pes > 0 {
		for i := range c.Mix {
			c.Mix[i].Spec.PEs = pes
		}
	}
	if err := c.validate(); err != nil {
		return Cohort{}, err
	}
	return c, nil
}

// parseMix parses "item:weight|item:weight" where item is an
// experiment name (table1, fig6, ext-mixed, ...) or
// cell(n,p,muls,mode). Weight defaults to 1.
func parseMix(s string) ([]MixEntry, error) {
	var mix []MixEntry
	for _, item := range splitOutsideParens(s, '|') {
		item = strings.TrimSpace(item)
		if item == "" {
			continue
		}
		weight := 1.0
		// The weight suffix is ":w" outside any parens.
		if i := lastColonOutsideParens(item); i >= 0 {
			w, err := strconv.ParseFloat(strings.TrimSpace(item[i+1:]), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: mix weight in %q: %w", item, err)
			}
			weight = w
			item = strings.TrimSpace(item[:i])
		}
		spec, err := parseMixSpec(item)
		if err != nil {
			return nil, err
		}
		mix = append(mix, MixEntry{Weight: weight, Spec: spec})
	}
	if len(mix) == 0 {
		return nil, fmt.Errorf("workload: empty mix %q", s)
	}
	return mix, nil
}

func lastColonOutsideParens(s string) int {
	depth := 0
	last := -1
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			depth++
		case ')':
			if depth > 0 {
				depth--
			}
		case ':':
			if depth == 0 {
				last = i
			}
		}
	}
	return last
}

func parseMixSpec(item string) (experiments.Spec, error) {
	if strings.HasPrefix(item, "cell(") && strings.HasSuffix(item, ")") {
		args := splitOutsideParens(item[len("cell("):len(item)-1], ',')
		if len(args) != 4 {
			return experiments.Spec{}, fmt.Errorf("workload: cell spec %q: want cell(n,p,muls,mode)", item)
		}
		n, err1 := strconv.Atoi(strings.TrimSpace(args[0]))
		p, err2 := strconv.Atoi(strings.TrimSpace(args[1]))
		muls, err3 := strconv.Atoi(strings.TrimSpace(args[2]))
		mode := strings.TrimSpace(args[3])
		if err1 != nil || err2 != nil || err3 != nil {
			return experiments.Spec{}, fmt.Errorf("workload: cell spec %q: bad integer", item)
		}
		return experiments.Spec{Cells: []experiments.CellSpec{{N: n, P: p, Muls: muls, Mode: mode}}}, nil
	}
	return experiments.Spec{Exps: []string{item}}, nil
}
