// Package escube implements the circuit-switched Extra-Stage Cube
// interconnection network of the PASM prototype.
//
// The Extra-Stage Cube (ESC, Adams & Siegel) is the generalized
// multistage cube network for N = 2^n lines — n stages of N/2
// two-by-two interchange boxes, where stage i pairs the lines whose
// labels differ in bit i — augmented with one extra cube_0 stage at
// the input. The two cube_0 stages (the extra input stage and the
// output stage 0) can be individually bypassed, which is what makes
// the network single-fault tolerant: every source/destination pair has
// two paths, one with the extra stage bypassed (the "primary" path,
// identical to the plain cube route) and one with the extra stage
// exchanging bit 0 first (the "secondary" path, whose intermediate
// links all differ from the primary's in bit 0 and therefore avoid any
// single faulty interior box).
//
// The network is circuit switched: paths are established once (a
// comparatively expensive operation on the prototype) and data then
// streams over the held circuits. The PASM matrix-multiplication
// algorithm exploits this by using the single static permutation
// PE i -> PE (i-1) mod p for the whole run.
package escube

import (
	"fmt"
	"math/bits"
)

// Setting is the state of one interchange box along a path.
type Setting uint8

// Box settings. An unused box is free to take either setting.
const (
	Free Setting = iota
	Straight
	Exchange
)

func (s Setting) String() string {
	switch s {
	case Straight:
		return "straight"
	case Exchange:
		return "exchange"
	default:
		return "free"
	}
}

// Hop is one stage traversal of an established path.
type Hop struct {
	Stage   int // n for the extra stage, n-1..0 for the cube stages
	Box     int
	Setting Setting
}

// Network is an N-line Extra-Stage Cube with circuit state.
type Network struct {
	n      int // log2(N)
	size   int // N
	stages int // n+1 (extra stage + n cube stages)

	// boxSetting[stage][box]: current committed setting, Free if the
	// box is not part of any established circuit.
	boxSetting [][]Setting
	// boxFaulty[stage][box]
	boxFaulty [][]bool
	// users[stage][box]: number of circuits through the box.
	users [][]int

	// circuits[src] = dst for established circuits; -1 when none.
	circuits []int
	paths    [][]Hop
}

// New returns a fault-free network with N = 2^n lines and no circuits.
// N must be a power of two and at least 2.
func New(size int) (*Network, error) {
	if size < 2 || size&(size-1) != 0 {
		return nil, fmt.Errorf("escube: size %d is not a power of two >= 2", size)
	}
	n := bits.TrailingZeros(uint(size))
	nw := &Network{n: n, size: size, stages: n + 1}
	nw.boxSetting = make([][]Setting, nw.stages)
	nw.boxFaulty = make([][]bool, nw.stages)
	nw.users = make([][]int, nw.stages)
	for s := range nw.boxSetting {
		nw.boxSetting[s] = make([]Setting, size/2)
		nw.boxFaulty[s] = make([]bool, size/2)
		nw.users[s] = make([]int, size/2)
	}
	nw.circuits = make([]int, size)
	for i := range nw.circuits {
		nw.circuits[i] = -1
	}
	nw.paths = make([][]Hop, size)
	return nw, nil
}

// MustNew is New for sizes known valid statically.
func MustNew(size int) *Network {
	nw, err := New(size)
	if err != nil {
		panic(err)
	}
	return nw
}

// Size returns the number of network lines N.
func (nw *Network) Size() int { return nw.size }

// Stages returns the stage count (log2(N) + 1).
func (nw *Network) Stages() int { return nw.stages }

// boxOf returns the interchange box index handling line l at a cube_i
// stage: the line label with bit i removed.
func boxOf(l, i int) int {
	return l>>(i+1)<<i | l&(1<<i-1)
}

// route computes the hop list for src->dst with the extra stage either
// bypassed (secondary=false) or exchanging (secondary=true). It does
// not touch network state.
func (nw *Network) route(src, dst int, secondary bool) []Hop {
	hops := make([]Hop, 0, nw.stages)
	label := src
	// Extra stage (cube_0) at the input; stage index n.
	set := Straight
	if secondary {
		set = Exchange
		label ^= 1
	}
	hops = append(hops, Hop{Stage: nw.n, Box: boxOf(label, 0), Setting: set})
	// Cube stages n-1 .. 0.
	for i := nw.n - 1; i >= 0; i-- {
		set := Straight
		if label>>i&1 != dst>>i&1 {
			set = Exchange
			label ^= 1 << i
		}
		hops = append(hops, Hop{Stage: i, Box: boxOf(label, i), Setting: set})
	}
	return hops
}

// usable reports whether a candidate path is compatible with the
// current circuit and fault state.
func (nw *Network) usable(hops []Hop) bool {
	for _, h := range hops {
		if nw.boxFaulty[h.Stage][h.Box] {
			return false
		}
		cur := nw.boxSetting[h.Stage][h.Box]
		if cur != Free && cur != h.Setting {
			return false
		}
	}
	return true
}

// Establish sets up a circuit from src to dst, preferring the primary
// (extra-stage-bypassed) path and falling back to the secondary path
// when the primary is blocked by a fault or a conflicting circuit.
func (nw *Network) Establish(src, dst int) error {
	if src < 0 || src >= nw.size || dst < 0 || dst >= nw.size {
		return fmt.Errorf("escube: establish %d->%d outside 0..%d", src, dst, nw.size-1)
	}
	if nw.circuits[src] != -1 {
		return fmt.Errorf("escube: source %d already holds a circuit to %d", src, nw.circuits[src])
	}
	for _, other := range nw.circuits {
		if other == dst {
			return fmt.Errorf("escube: destination %d already in use", dst)
		}
	}
	primary := nw.route(src, dst, false)
	secondary := nw.route(src, dst, true)
	var chosen []Hop
	switch {
	case nw.usable(primary):
		chosen = primary
	case nw.usable(secondary):
		chosen = secondary
	default:
		return fmt.Errorf("escube: no fault-free conflict-free path %d->%d", src, dst)
	}
	for _, h := range chosen {
		nw.boxSetting[h.Stage][h.Box] = h.Setting
		nw.users[h.Stage][h.Box]++
	}
	nw.circuits[src] = dst
	nw.paths[src] = chosen
	return nil
}

// EstablishPermutation establishes one circuit per source according to
// perm (perm[src] = dst). Sources with perm[src] < 0 are skipped. It
// searches over the primary/secondary path choice of every circuit
// (depth-first with backtracking), so a permutation is rejected only
// if no combination of path choices is conflict-free and fault-free —
// one faulty box can force several circuits onto their alternate
// paths simultaneously. On failure nothing is left established.
func (nw *Network) EstablishPermutation(perm []int) error {
	srcs := make([]int, 0, len(perm))
	for src, dst := range perm {
		if dst < 0 {
			continue
		}
		if src >= nw.size || dst >= nw.size || src < 0 {
			return fmt.Errorf("escube: permutation entry %d->%d out of range", src, dst)
		}
		if nw.circuits[src] != -1 {
			return fmt.Errorf("escube: source %d already holds a circuit", src)
		}
		srcs = append(srcs, src)
	}
	if !nw.placePerm(perm, srcs, 0) {
		return fmt.Errorf("escube: permutation not routable with current faults and circuits")
	}
	return nil
}

// placePerm recursively routes srcs[i:], trying the primary path first
// and backtracking through the secondary.
func (nw *Network) placePerm(perm, srcs []int, i int) bool {
	if i == len(srcs) {
		return true
	}
	src := srcs[i]
	for _, secondary := range []bool{false, true} {
		hops := nw.route(src, perm[src], secondary)
		if !nw.usable(hops) {
			continue
		}
		for _, h := range hops {
			nw.boxSetting[h.Stage][h.Box] = h.Setting
			nw.users[h.Stage][h.Box]++
		}
		nw.circuits[src] = perm[src]
		nw.paths[src] = hops
		if nw.placePerm(perm, srcs, i+1) {
			return true
		}
		nw.Release(src)
	}
	return false
}

// Release tears down the circuit held by src, if any.
func (nw *Network) Release(src int) {
	if src < 0 || src >= nw.size || nw.circuits[src] == -1 {
		return
	}
	for _, h := range nw.paths[src] {
		if nw.users[h.Stage][h.Box]--; nw.users[h.Stage][h.Box] == 0 {
			nw.boxSetting[h.Stage][h.Box] = Free
		}
	}
	nw.circuits[src] = -1
	nw.paths[src] = nil
}

// ReleaseAll tears down every circuit.
func (nw *Network) ReleaseAll() {
	for src := range nw.circuits {
		nw.Release(src)
	}
}

// DestOf returns the destination of src's circuit, or -1.
func (nw *Network) DestOf(src int) int { return nw.circuits[src] }

// SourceOf returns the source holding a circuit to dst, or -1.
func (nw *Network) SourceOf(dst int) int {
	for s, d := range nw.circuits {
		if d == dst {
			return s
		}
	}
	return -1
}

// Path returns the hop list of src's circuit (nil if none).
func (nw *Network) Path(src int) []Hop { return nw.paths[src] }

// FailBox marks an interchange box faulty. Establishing paths through
// it will fail over to the alternate path. Failing a box that carries
// live circuits returns an error; release them first.
func (nw *Network) FailBox(stage, box int) error {
	if stage < 0 || stage >= nw.stages || box < 0 || box >= nw.size/2 {
		return fmt.Errorf("escube: no box (stage %d, box %d)", stage, box)
	}
	if nw.users[stage][box] > 0 {
		return fmt.Errorf("escube: box (stage %d, box %d) carries %d live circuits", stage, box, nw.users[stage][box])
	}
	nw.boxFaulty[stage][box] = true
	return nil
}

// RepairBox clears a fault.
func (nw *Network) RepairBox(stage, box int) {
	if stage >= 0 && stage < nw.stages && box >= 0 && box < nw.size/2 {
		nw.boxFaulty[stage][box] = false
	}
}

// FaultCount returns the number of faulty boxes.
func (nw *Network) FaultCount() int {
	c := 0
	for _, st := range nw.boxFaulty {
		for _, f := range st {
			if f {
				c++
			}
		}
	}
	return c
}
