package escube

import (
	"testing"
	"testing/quick"
)

func TestNewValidatesSize(t *testing.T) {
	for _, bad := range []int{0, 1, 3, 6, 12, -8} {
		if _, err := New(bad); err == nil {
			t.Errorf("New(%d): expected error", bad)
		}
	}
	for _, good := range []int{2, 4, 8, 16, 1024} {
		nw, err := New(good)
		if err != nil {
			t.Errorf("New(%d): %v", good, err)
			continue
		}
		if nw.Size() != good {
			t.Errorf("Size = %d", nw.Size())
		}
	}
}

func TestStageCount(t *testing.T) {
	nw := MustNew(16)
	if nw.Stages() != 5 { // log2(16)+1: the "extra" stage
		t.Errorf("Stages = %d, want 5", nw.Stages())
	}
}

// simulate traces a path's hops through the link labels and returns
// the output line reached from src.
func simulate(nw *Network, src int, hops []Hop) int {
	label := src
	for _, h := range hops {
		bit := h.Stage
		if h.Stage == nw.n { // extra stage is cube_0
			bit = 0
		}
		if h.Setting == Exchange {
			label ^= 1 << bit
		}
	}
	return label
}

func TestPrimaryAndSecondaryPathsReachDestination(t *testing.T) {
	nw := MustNew(16)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			for _, sec := range []bool{false, true} {
				hops := nw.route(src, dst, sec)
				if len(hops) != nw.Stages() {
					t.Fatalf("route(%d,%d,%v): %d hops", src, dst, sec, len(hops))
				}
				if got := simulate(nw, src, hops); got != dst {
					t.Errorf("route(%d,%d,%v) reaches %d", src, dst, sec, got)
				}
			}
		}
	}
}

func TestPathsAreInteriorDisjoint(t *testing.T) {
	// The defining ESC property: for any src/dst, the primary and
	// secondary paths share no interior (cube stages n-1..1) boxes.
	nw := MustNew(16)
	for src := 0; src < 16; src++ {
		for dst := 0; dst < 16; dst++ {
			p := nw.route(src, dst, false)
			s := nw.route(src, dst, true)
			used := map[[2]int]bool{}
			for _, h := range p {
				if h.Stage != nw.n && h.Stage != 0 {
					used[[2]int{h.Stage, h.Box}] = true
				}
			}
			for _, h := range s {
				if h.Stage != nw.n && h.Stage != 0 && used[[2]int{h.Stage, h.Box}] {
					t.Fatalf("src=%d dst=%d: interior box (stage %d, box %d) shared", src, dst, h.Stage, h.Box)
				}
			}
		}
	}
}

func TestShiftPermutationRoutesConflictFree(t *testing.T) {
	// The matrix-multiplication algorithm holds PE i -> PE (i-1) mod p
	// for the entire run; a cube network passes uniform shifts.
	for _, p := range []int{4, 8, 16} {
		nw := MustNew(p)
		perm := make([]int, p)
		for i := range perm {
			perm[i] = (i - 1 + p) % p
		}
		if err := nw.EstablishPermutation(perm); err != nil {
			t.Errorf("p=%d: %v", p, err)
			continue
		}
		for i := range perm {
			if nw.DestOf(i) != perm[i] {
				t.Errorf("p=%d: DestOf(%d) = %d, want %d", p, i, nw.DestOf(i), perm[i])
			}
			if nw.SourceOf(perm[i]) != i {
				t.Errorf("p=%d: SourceOf(%d) = %d, want %d", p, perm[i], nw.SourceOf(perm[i]), i)
			}
		}
	}
}

func TestIdentityAndReversalPermutations(t *testing.T) {
	nw := MustNew(8)
	perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
	if err := nw.EstablishPermutation(perm); err != nil {
		t.Errorf("identity: %v", err)
	}
	nw.ReleaseAll()
	rev := []int{7, 6, 5, 4, 3, 2, 1, 0}
	if err := nw.EstablishPermutation(rev); err != nil {
		t.Errorf("reversal: %v", err)
	}
}

func TestConflictDetected(t *testing.T) {
	nw := MustNew(4)
	if err := nw.Establish(0, 2); err != nil {
		t.Fatal(err)
	}
	// Destination in use.
	if err := nw.Establish(1, 2); err == nil {
		t.Error("duplicate destination accepted")
	}
	// Source already holds a circuit.
	if err := nw.Establish(0, 3); err == nil {
		t.Error("double source accepted")
	}
}

func TestReleaseFreesBoxes(t *testing.T) {
	nw := MustNew(8)
	if err := nw.Establish(3, 5); err != nil {
		t.Fatal(err)
	}
	if nw.Path(3) == nil {
		t.Fatal("no path recorded")
	}
	nw.Release(3)
	if nw.DestOf(3) != -1 || nw.Path(3) != nil {
		t.Error("release did not clear circuit")
	}
	for s := range nw.boxSetting {
		for b, set := range nw.boxSetting[s] {
			if set != Free {
				t.Errorf("box (stage %d, %d) still %v after release", s, b, set)
			}
		}
	}
}

func TestSingleFaultTolerance(t *testing.T) {
	// Fail each interior box in turn; every src/dst pair must still be
	// routable in an otherwise idle network (the ESC single-fault
	// guarantee).
	base := MustNew(8)
	for stage := 1; stage < base.Stages()-1; stage++ { // interior cube stages
		for box := 0; box < 4; box++ {
			nw := MustNew(8)
			if err := nw.FailBox(stage, box); err != nil {
				t.Fatal(err)
			}
			for src := 0; src < 8; src++ {
				for dst := 0; dst < 8; dst++ {
					if err := nw.Establish(src, dst); err != nil {
						t.Errorf("fault (stage %d, box %d): %d->%d unroutable: %v", stage, box, src, dst, err)
					}
					nw.Release(src)
				}
			}
		}
	}
}

func TestFaultFailoverUsesSecondary(t *testing.T) {
	nw := MustNew(8)
	primary := nw.route(2, 6, false)
	// Fail an interior box on the primary path.
	var failed Hop
	for _, h := range primary {
		if h.Stage != nw.n && h.Stage != 0 {
			failed = h
			break
		}
	}
	if err := nw.FailBox(failed.Stage, failed.Box); err != nil {
		t.Fatal(err)
	}
	if err := nw.Establish(2, 6); err != nil {
		t.Fatalf("failover: %v", err)
	}
	// The established path must start with an Exchange in the extra
	// stage (the secondary route).
	got := nw.Path(2)
	if got[0].Stage != nw.n || got[0].Setting != Exchange {
		t.Errorf("expected secondary path via extra stage, got %+v", got[0])
	}
	if nw.FaultCount() != 1 {
		t.Errorf("FaultCount = %d", nw.FaultCount())
	}
	nw.ReleaseAll()
	nw.RepairBox(failed.Stage, failed.Box)
	if nw.FaultCount() != 0 {
		t.Errorf("FaultCount after repair = %d", nw.FaultCount())
	}
}

func TestFailBoxRefusesLiveCircuits(t *testing.T) {
	nw := MustNew(8)
	if err := nw.Establish(1, 4); err != nil {
		t.Fatal(err)
	}
	h := nw.Path(1)[2]
	if err := nw.FailBox(h.Stage, h.Box); err == nil {
		t.Error("FailBox on a live box accepted")
	}
}

// Property: every permutation of 8 lines either routes completely or
// fails cleanly, and after ReleaseAll the network is pristine.
func TestPermutationProperty(t *testing.T) {
	f := func(seed uint32) bool {
		// Build a permutation from the seed via Fisher-Yates.
		perm := []int{0, 1, 2, 3, 4, 5, 6, 7}
		s := seed
		for i := 7; i > 0; i-- {
			s = s*1664525 + 1013904223
			j := int(s % uint32(i+1))
			perm[i], perm[j] = perm[j], perm[i]
		}
		nw := MustNew(8)
		err := nw.EstablishPermutation(perm)
		if err == nil {
			for i, d := range perm {
				if nw.DestOf(i) != d {
					return false
				}
			}
		}
		nw.ReleaseAll()
		for s := range nw.boxSetting {
			for _, set := range nw.boxSetting[s] {
				if set != Free {
					return false
				}
			}
		}
		for i := 0; i < 8; i++ {
			if nw.DestOf(i) != -1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBoxOf(t *testing.T) {
	// At cube stage i, lines l and l^2^i share a box.
	for i := 0; i < 4; i++ {
		for l := 0; l < 16; l++ {
			if boxOf(l, i) != boxOf(l^1<<i, i) {
				t.Errorf("stage %d: lines %d and %d not paired", i, l, l^1<<i)
			}
		}
	}
	if boxOf(5, 0) != 2 { // 101b -> drop bit 0 -> 10b
		t.Errorf("boxOf(5,0) = %d, want 2", boxOf(5, 0))
	}
	if boxOf(5, 1) != 3 { // 101b -> drop bit 1 -> 11b
		t.Errorf("boxOf(5,1) = %d, want 3", boxOf(5, 1))
	}
}
