package escube

import (
	"fmt"
	"math/bits"
	"sync"
)

// Subcube is a partition's view of a larger Extra-Stage Cube: the
// aligned power-of-two block of lines base..base+size-1, addressed by
// logical line numbers 0..size-1. It is how the partitionable machine
// constrains routing to a partition's subcube — a virtual machine
// holding the view can only connect lines inside its own block, and
// the paths those connections take are exactly the paths a standalone
// size-line ESC would use:
//
//   - Lines of an aligned subcube differ only in their low log2(size)
//     bits, so an intra-subcube route exchanges nothing at cube stages
//     log2(size) and above — those hops are Straight through boxes the
//     subcube may share with its neighbors, and Straight circuits
//     coexist in one box (two-by-two interchange boxes pass both lines
//     through independently when set straight).
//   - Cube stages below log2(size), and the extra input stage, pair
//     lines whose labels differ only in low bits — both inside the
//     subcube — so those boxes are private to the partition.
//
// Together these give the isomorphism the partitioned machine rests
// on: for any logical permutation, Establish on a Subcube succeeds or
// fails exactly as it would on a standalone Network of the subcube's
// size, regardless of what other partitions' circuits are doing (they
// can only ever need the shared boxes Straight, which is what this
// partition needs too). TestSubcubeIsomorphism pins it.
//
// Concurrency: independent partitions mutate the parent's box state
// when establishing and releasing, so views created with a shared
// Locker serialize those mutations. DestOf — the per-transfer hot
// path — is answered from the view's own circuit table and never
// takes the lock.
type Subcube struct {
	parent *Network
	base   int
	size   int
	order  int // log2(size)
	mu     sync.Locker

	// circuits[src] = logical dst, -1 when none. Only this view
	// mutates it (under mu), and the simulated machine holding the
	// view issues network operations from one goroutine at a time, so
	// lock-free reads from that goroutine are safe.
	circuits []int
}

// Subcube returns the view of the aligned block [base, base+size).
// size must be a power of two >= 2 (the ESC pairs lines, so the
// smallest meaningful subcube is a pair; a 1-PE partition gets a
// 2-line view and uses only its line 0, exactly like a standalone
// 1-PE machine's 2-line network). mu, when non-nil, serializes
// circuit mutations against other views of the same parent.
func (nw *Network) Subcube(base, size int, mu sync.Locker) (*Subcube, error) {
	switch {
	case size < 2 || size&(size-1) != 0:
		return nil, fmt.Errorf("escube: subcube size %d is not a power of two >= 2", size)
	case size > nw.size:
		return nil, fmt.Errorf("escube: subcube size %d exceeds the %d-line network", size, nw.size)
	case base < 0 || base%size != 0:
		return nil, fmt.Errorf("escube: subcube base %d is not aligned to size %d", base, size)
	case base+size > nw.size:
		return nil, fmt.Errorf("escube: subcube [%d,%d) exceeds the %d-line network", base, base+size, nw.size)
	}
	sc := &Subcube{
		parent:   nw,
		base:     base,
		size:     size,
		order:    bits.TrailingZeros(uint(size)),
		mu:       mu,
		circuits: make([]int, size),
	}
	for i := range sc.circuits {
		sc.circuits[i] = -1
	}
	return sc, nil
}

// Size returns the number of lines in the view.
func (sc *Subcube) Size() int { return sc.size }

// Base returns the view's first physical line.
func (sc *Subcube) Base() int { return sc.base }

func (sc *Subcube) lock() {
	if sc.mu != nil {
		sc.mu.Lock()
	}
}

func (sc *Subcube) unlock() {
	if sc.mu != nil {
		sc.mu.Unlock()
	}
}

// Establish sets up a circuit between logical lines src and dst,
// routed through the parent network but confined (by construction) to
// the subcube's private boxes plus Straight passes through shared
// ones.
func (sc *Subcube) Establish(src, dst int) error {
	if src < 0 || src >= sc.size || dst < 0 || dst >= sc.size {
		return fmt.Errorf("escube: establish %d->%d outside subcube 0..%d", src, dst, sc.size-1)
	}
	sc.lock()
	defer sc.unlock()
	if err := sc.parent.Establish(sc.base+src, sc.base+dst); err != nil {
		return err
	}
	sc.circuits[src] = dst
	return nil
}

// EstablishPermutation establishes one circuit per logical source
// (perm[src] = dst, -1 to skip), with the parent's backtracking
// search over primary/secondary path choices. On failure nothing is
// left established.
func (sc *Subcube) EstablishPermutation(perm []int) error {
	full := make([]int, sc.parent.size)
	for i := range full {
		full[i] = -1
	}
	for src, dst := range perm {
		if dst < 0 {
			continue
		}
		if src >= sc.size || dst >= sc.size {
			return fmt.Errorf("escube: permutation entry %d->%d outside subcube 0..%d", src, dst, sc.size-1)
		}
		full[sc.base+src] = sc.base + dst
	}
	sc.lock()
	defer sc.unlock()
	if err := sc.parent.EstablishPermutation(full); err != nil {
		return err
	}
	for src, dst := range perm {
		if src < sc.size && dst >= 0 {
			sc.circuits[src] = dst
		}
	}
	return nil
}

// Release tears down the circuit held by logical line src, if any.
func (sc *Subcube) Release(src int) {
	if src < 0 || src >= sc.size || sc.circuits[src] == -1 {
		return
	}
	sc.lock()
	sc.parent.Release(sc.base + src)
	sc.unlock()
	sc.circuits[src] = -1
}

// ReleaseAll tears down every circuit held by this view. Other
// partitions' circuits are untouched.
func (sc *Subcube) ReleaseAll() {
	for src := range sc.circuits {
		sc.Release(src)
	}
}

// DestOf returns the logical destination of src's circuit, or -1.
// Lock-free: the view's own circuit table is only written by the
// goroutine simulating the partition.
func (sc *Subcube) DestOf(src int) int {
	if src < 0 || src >= sc.size {
		return -1
	}
	return sc.circuits[src]
}

// FailBox marks a box of the subcube's logical network faulty: stage
// log2(size) is the extra input stage (mapped to the parent's extra
// stage) and stages log2(size)-1..0 are the cube stages the subcube
// privately owns. Box indices are logical, exactly as on a standalone
// network of the subcube's size, so fault-tolerance experiments run
// identically in and out of a partition.
func (sc *Subcube) FailBox(stage, box int) error {
	pStage, pBox, err := sc.mapBox(stage, box)
	if err != nil {
		return err
	}
	sc.lock()
	defer sc.unlock()
	if err := sc.parent.FailBox(pStage, pBox); err != nil {
		return err
	}
	return nil
}

// RepairBox clears a logical fault.
func (sc *Subcube) RepairBox(stage, box int) {
	if pStage, pBox, err := sc.mapBox(stage, box); err == nil {
		sc.lock()
		sc.parent.RepairBox(pStage, pBox)
		sc.unlock()
	}
}

// mapBox translates a logical (stage, box) of the subcube-sized
// network onto the parent. A logical cube_i stage is the parent's
// cube_i stage (the low label bits agree); the logical extra stage is
// the parent's extra stage. The logical box handling logical line l at
// a cube_i stage is boxOf(l, i); the physical box is boxOf(base+l, i),
// and since base is aligned past bit i, the mapping is
// boxOf(base, i) | logical box with base's high bits merged in.
func (sc *Subcube) mapBox(stage, box int) (int, int, error) {
	if stage < 0 || stage > sc.order || box < 0 || box >= sc.size/2 {
		return 0, 0, fmt.Errorf("escube: no box (stage %d, box %d) in a %d-line subcube", stage, box, sc.size)
	}
	// Logical box indices at a cube_i stage (and the extra stage,
	// which pairs on bit 0) enumerate the subcube's line labels with
	// the pairing bit removed; merging the base's high bits shifts the
	// same enumeration into the parent's index space.
	cube := stage // pairing bit: i for cube stages, 0 for the extra stage
	pStage := stage
	if stage == sc.order {
		cube = 0
		pStage = sc.parent.n // the parent's extra stage
	}
	pBox := boxOf(sc.base, cube) | box
	return pStage, pBox, nil
}
