package escube

import (
	"fmt"
	"sync"
	"testing"
)

// TestSubcubeIsomorphism pins the property the partitioned machine
// rests on: every single-circuit establishment on a subcube view
// succeeds or fails exactly as on a standalone network of the
// subcube's size, for every (src, dst) pair, every aligned base, and
// with every logical box fault — even while neighboring partitions
// hold their own circuits.
func TestSubcubeIsomorphism(t *testing.T) {
	const parentSize = 32
	for _, size := range []int{2, 4, 8} {
		for base := 0; base+size <= parentSize; base += size {
			t.Run(fmt.Sprintf("size=%d/base=%d", size, base), func(t *testing.T) {
				// Fault-free outcomes, pairwise.
				for src := 0; src < size; src++ {
					for dst := 0; dst < size; dst++ {
						ref := MustNew(size)
						parent := MustNew(parentSize)
						occupyNeighbors(t, parent, base, size)
						sc, err := parent.Subcube(base, size, nil)
						if err != nil {
							t.Fatalf("Subcube: %v", err)
						}
						refErr := ref.Establish(src, dst)
						scErr := sc.Establish(src, dst)
						if (refErr == nil) != (scErr == nil) {
							t.Fatalf("establish %d->%d: standalone err=%v, subcube err=%v", src, dst, refErr, scErr)
						}
						if scErr == nil && sc.DestOf(src) != dst {
							t.Fatalf("DestOf(%d) = %d, want %d", src, sc.DestOf(src), dst)
						}
					}
				}
			})
		}
	}
}

// TestSubcubeFaultIsomorphism checks that a logical box fault on a
// view blocks exactly the connections it blocks on a standalone
// network of the subcube's size.
func TestSubcubeFaultIsomorphism(t *testing.T) {
	const parentSize = 16
	for _, size := range []int{4, 8} {
		order := 0
		for 1<<order < size {
			order++
		}
		for base := 0; base+size <= parentSize; base += size {
			for stage := 0; stage <= order; stage++ {
				for box := 0; box < size/2; box++ {
					for src := 0; src < size; src++ {
						for dst := 0; dst < size; dst++ {
							ref := MustNew(size)
							if err := ref.FailBox(stage, box); err != nil {
								t.Fatalf("standalone FailBox(%d,%d): %v", stage, box, err)
							}
							parent := MustNew(parentSize)
							sc, err := parent.Subcube(base, size, nil)
							if err != nil {
								t.Fatalf("Subcube: %v", err)
							}
							if err := sc.FailBox(stage, box); err != nil {
								t.Fatalf("subcube FailBox(%d,%d): %v", stage, box, err)
							}
							refErr := ref.Establish(src, dst)
							scErr := sc.Establish(src, dst)
							if (refErr == nil) != (scErr == nil) {
								t.Fatalf("size=%d base=%d fault(%d,%d) establish %d->%d: standalone err=%v, subcube err=%v",
									size, base, stage, box, src, dst, refErr, scErr)
							}
						}
					}
				}
			}
		}
	}
}

// TestSubcubePermutationIsomorphism checks the matmul shift
// permutation (and the full reversal) on views against standalone
// networks, with neighbors established.
func TestSubcubePermutationIsomorphism(t *testing.T) {
	const parentSize = 64
	perms := map[string]func(size int) []int{
		"shift": func(size int) []int {
			p := make([]int, size)
			for i := range p {
				p[i] = (i - 1 + size) % size
			}
			return p
		},
		"reverse": func(size int) []int {
			p := make([]int, size)
			for i := range p {
				p[i] = size - 1 - i
			}
			return p
		},
	}
	for _, size := range []int{2, 4, 8, 16} {
		for name, mk := range perms {
			perm := mk(size)
			ref := MustNew(size)
			if err := ref.EstablishPermutation(perm); err != nil {
				t.Fatalf("standalone %s size=%d: %v", name, size, err)
			}
			parent := MustNew(parentSize)
			occupyNeighbors(t, parent, size, size) // base=size is aligned
			sc, err := parent.Subcube(size, size, nil)
			if err != nil {
				t.Fatalf("Subcube: %v", err)
			}
			if err := sc.EstablishPermutation(perm); err != nil {
				t.Fatalf("subcube %s size=%d: %v", name, size, err)
			}
			for src, dst := range perm {
				if sc.DestOf(src) != dst {
					t.Fatalf("%s: DestOf(%d) = %d, want %d", name, src, sc.DestOf(src), dst)
				}
			}
			// Containment: every physical hop at a shared stage (cube
			// stages at or above the subcube's order) must be Straight —
			// the subcube constraint that makes partitions independent.
			order := 0
			for 1<<order < size {
				order++
			}
			for src := 0; src < size; src++ {
				for _, h := range parent.Path(size + src) {
					if h.Stage < parent.n && h.Stage >= order && h.Setting != Straight {
						t.Fatalf("%s: line %d hop at shared stage %d is %v, want straight", name, src, h.Stage, h.Setting)
					}
				}
			}
		}
	}
}

// occupyNeighbors establishes shift permutations on every other
// aligned block of the parent, so isomorphism is tested against a
// machine whose other partitions are busy.
func occupyNeighbors(t *testing.T, parent *Network, base, size int) {
	t.Helper()
	for nb := 0; nb+size <= parent.Size(); nb += size {
		if nb == base {
			continue
		}
		nsc, err := parent.Subcube(nb, size, nil)
		if err != nil {
			t.Fatalf("neighbor Subcube(%d,%d): %v", nb, size, err)
		}
		perm := make([]int, size)
		for i := range perm {
			perm[i] = (i - 1 + size) % size
		}
		if err := nsc.EstablishPermutation(perm); err != nil {
			t.Fatalf("neighbor shift at %d: %v", nb, err)
		}
	}
}

// TestSubcubeConcurrentPartitions races independent partitions
// establishing and releasing circuits through one shared network with
// a shared lock — the co-resident-job configuration of the
// partitioned machine.
func TestSubcubeConcurrentPartitions(t *testing.T) {
	const parentSize, size = 64, 8
	parent := MustNew(parentSize)
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, parentSize/size)
	for p := 0; p < parentSize/size; p++ {
		sc, err := parent.Subcube(p*size, size, &mu)
		if err != nil {
			t.Fatalf("Subcube: %v", err)
		}
		wg.Add(1)
		go func(p int, sc *Subcube) {
			defer wg.Done()
			perm := make([]int, size)
			for i := range perm {
				perm[i] = (i - 1 + size) % size
			}
			for round := 0; round < 50; round++ {
				if err := sc.EstablishPermutation(perm); err != nil {
					errs[p] = fmt.Errorf("round %d: %w", round, err)
					return
				}
				for i := 0; i < size; i++ {
					if sc.DestOf(i) != perm[i] {
						errs[p] = fmt.Errorf("round %d: DestOf(%d) = %d", round, i, sc.DestOf(i))
						return
					}
				}
				sc.ReleaseAll()
			}
		}(p, sc)
	}
	wg.Wait()
	for p, err := range errs {
		if err != nil {
			t.Errorf("partition %d: %v", p, err)
		}
	}
	// Everything released: a fresh full-machine permutation must route.
	full, err := parent.Subcube(0, parentSize, nil)
	if err != nil {
		t.Fatalf("full view: %v", err)
	}
	perm := make([]int, parentSize)
	for i := range perm {
		perm[i] = (i - 1 + parentSize) % parentSize
	}
	if err := full.EstablishPermutation(perm); err != nil {
		t.Errorf("machine not clean after concurrent partitions: %v", err)
	}
}

// TestSubcubeBounds checks view construction and out-of-range
// operands.
func TestSubcubeBounds(t *testing.T) {
	parent := MustNew(16)
	bad := []struct{ base, size int }{
		{1, 4},  // misaligned
		{0, 3},  // not a power of two
		{0, 1},  // below the 2-line minimum
		{0, 32}, // larger than the parent
		{12, 8}, // misaligned for its size
		{-4, 4}, // negative base
		{16, 4}, // past the end
	}
	for _, c := range bad {
		if _, err := parent.Subcube(c.base, c.size, nil); err == nil {
			t.Errorf("Subcube(%d,%d): expected error", c.base, c.size)
		}
	}
	sc, err := parent.Subcube(8, 4, nil)
	if err != nil {
		t.Fatalf("Subcube: %v", err)
	}
	if err := sc.Establish(0, 5); err == nil {
		t.Error("establish to a line outside the subcube: expected error")
	}
	if err := sc.EstablishPermutation([]int{4, -1, -1, -1}); err == nil {
		t.Error("permutation entry outside the subcube: expected error")
	}
	if err := sc.FailBox(9, 0); err == nil {
		t.Error("FailBox beyond the logical stages: expected error")
	}
	if sc.DestOf(99) != -1 {
		t.Error("DestOf out of range: want -1")
	}
	sc.Release(99) // must not panic
	if sc.Base() != 8 || sc.Size() != 4 {
		t.Errorf("Base/Size = %d/%d, want 8/4", sc.Base(), sc.Size())
	}
}
