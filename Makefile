# Build, verification, and benchmark entry points. `make ci` is the
# gate: build, vet, tests, and the race detector over every package.

GO ?= go

.PHONY: all build vet test race cover ci bench bench-json bench-smoke bench-interp trace-smoke service-smoke chaos-smoke cluster-smoke telemetry-smoke partition-smoke slo-smoke bench-service bench-cluster bench-partition bench-slo report

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The determinism tests run every experiment twice; under the race
# detector on a small host that exceeds go test's default 10m timeout.
race:
	$(GO) test -race -timeout 45m ./...

ci: build vet test race bench-smoke bench-interp trace-smoke service-smoke chaos-smoke cluster-smoke telemetry-smoke partition-smoke slo-smoke

# Coverage gate: per-package statement coverage printed and compared
# against the checked-in floor; fails on regression. After genuinely
# improving coverage, raise the floor with:
#   go run ./scripts/covercheck -update
cover:
	$(GO) run ./scripts/covercheck

# End-to-end exporter check: run a small S/MIMD job with -trace-out and
# validate the emitted Chrome trace against the exporter's schema.
trace-smoke:
	$(GO) run ./cmd/pasmrun -n 8 -p 2 -mode smimd -trace-out pasmrun.trace.json >/dev/null
	$(GO) run ./scripts/tracecheck pasmrun.trace.json
	rm -f pasmrun.trace.json

# End-to-end serving check: build pasmd + pasmbench, start a daemon,
# and assert byte-identity (cold miss, cache hit, -remote), 503 on a
# full queue, and a graceful drain that loses no accepted job.
service-smoke:
	$(GO) run ./scripts/servicesmoke

# Resilience check: run pasmd under a fixed fault-injection profile
# (errors, delays, panics at every point) and assert no accepted job is
# lost, all results stay byte-identical to fault-free runs, and the
# injected faults + client retries are visible in /metrics.
chaos-smoke:
	$(GO) run ./scripts/chaossmoke

# Cluster fault-tolerance check: three pasmd replicas behind pasmgw;
# SIGKILL one mid-run, assert failover, breaker open/close, peer cache
# fill, byte-identical results throughout, and a lossless drain.
cluster-smoke:
	$(GO) run ./scripts/clustersmoke

# Partitioned-machine check: pasmd with -machine-pes 64 packs
# concurrent jobs onto subcube partitions; a co-resident pes=32 job is
# byte-identical to a standalone 32-PE machine, the loadgen -pes-mix
# storm completes clean, oversize specs get 400, and a drain places
# every job still waiting for a partition.
partition-smoke:
	$(GO) run ./scripts/partitionsmoke

# End-to-end observability check: three traced replicas behind a
# traced gateway; one trace ID spans gateway -> replica -> worker with
# every serving stage, the merged host+sim Perfetto export validates,
# cluster-level stage quantiles appear in /metrics, and the detached
# telemetry path is zero allocations.
telemetry-smoke:
	$(GO) run ./scripts/telemetrysmoke

# SLO-aware serving check: pasmd with -sched sjf and SLO classes,
# replay the committed golden workload trace open-loop, and assert a
# lossless drain, per-class latency quantiles + SLO verdicts +
# fairness index in /metrics, and the per-client 429 admission path.
slo-smoke:
	$(GO) run ./scripts/slosmoke

# SLO scheduling benchmark: deterministic virtual-time replay of the
# golden trace under FCFS vs priority-SJF — short-class p99 must
# improve, replays must be byte-identical, and executing a trace
# prefix under both modes must give identical report bytes
# (writes BENCH_slo.json).
bench-slo:
	$(GO) run ./scripts/slobench -out BENCH_slo.json

# Cluster serving benchmark: the loadgen workload through pasmgw with
# 1 vs 3 replicas, recording latency, hit rate, and peer fills
# (writes BENCH_cluster.json).
bench-cluster:
	$(GO) run ./scripts/clusterbench -out BENCH_cluster.json

# Serving benchmark: throughput and latency percentiles for cold-miss
# vs cache-hit requests (writes BENCH_service.json).
bench-service:
	$(GO) build -o /tmp/pasmd.bench ./cmd/pasmd
	/tmp/pasmd.bench -addr 127.0.0.1:0 -addr-file /tmp/pasmd.bench.addr \
		-queue 128 -workers 2 & \
	sleep 1 && \
	$(GO) run ./scripts/loadgen -addr "$$(cat /tmp/pasmd.bench.addr)" \
		-c 4 -n 40 -out BENCH_service.json; \
	status=$$?; kill %1 2>/dev/null; rm -f /tmp/pasmd.bench /tmp/pasmd.bench.addr; exit $$status

# Quick wall-clock + simulated-cycle baseline (writes BENCH_baseline.json).
bench-json:
	scripts/bench.sh

# Partitioned co-scheduling benchmark: the ext-partition sweep on a
# 64-PE machine — mixed-size job storm under each scheduling policy vs
# the serial whole-machine baseline (writes BENCH_partition.json).
bench-partition:
	scripts/bench.sh partition

# Go benchmarks (simulated metrics + interpreter allocation check).
bench:
	$(GO) test -run xxx -bench . -benchmem .

# Allocation gate for the superinstruction tier: a short benchmark run
# plus the AllocsPerRun test asserting the hot path is 0 allocs/op in
# steady state.
bench-smoke:
	$(GO) test -run TestSuperPathZeroAllocs -count=1 \
		-bench 'BenchmarkInterpreter(Table|Super)' -benchtime 100x -benchmem \
		./internal/m68k/

# Interpreter-tier regression gate: remeasure the BENCH_interp.json
# rows and fail if the super tier's speedup over the reference tier
# fell below the recorded ratios (a noise margin absorbs host jitter).
bench-interp:
	$(GO) run ./cmd/interpbench -reps 2 -against BENCH_interp.json

report:
	$(GO) run ./cmd/pasmreport -o report.md
