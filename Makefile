# Build, verification, and benchmark entry points. `make ci` is the
# gate: build, vet, tests, and the race detector over every package.

GO ?= go

.PHONY: all build vet test race ci bench bench-json report

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The determinism tests run every experiment twice; under the race
# detector on a small host that exceeds go test's default 10m timeout.
race:
	$(GO) test -race -timeout 45m ./...

ci: build vet test race

# Quick wall-clock + simulated-cycle baseline (writes BENCH_baseline.json).
bench-json:
	scripts/bench.sh

# Go benchmarks (simulated metrics + interpreter allocation check).
bench:
	$(GO) test -run xxx -bench . -benchmem .

report:
	$(GO) run ./cmd/pasmreport -o report.md
