# Build, verification, and benchmark entry points. `make ci` is the
# gate: build, vet, tests, and the race detector over every package.

GO ?= go

.PHONY: all build vet test race ci bench bench-json trace-smoke report

all: ci

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The determinism tests run every experiment twice; under the race
# detector on a small host that exceeds go test's default 10m timeout.
race:
	$(GO) test -race -timeout 45m ./...

ci: build vet test race trace-smoke

# End-to-end exporter check: run a small S/MIMD job with -trace-out and
# validate the emitted Chrome trace against the exporter's schema.
trace-smoke:
	$(GO) run ./cmd/pasmrun -n 8 -p 2 -mode smimd -trace-out pasmrun.trace.json >/dev/null
	$(GO) run ./scripts/tracecheck pasmrun.trace.json
	rm -f pasmrun.trace.json

# Quick wall-clock + simulated-cycle baseline (writes BENCH_baseline.json).
bench-json:
	scripts/bench.sh

# Go benchmarks (simulated metrics + interpreter allocation check).
bench:
	$(GO) test -run xxx -bench . -benchmem .

report:
	$(GO) run ./cmd/pasmreport -o report.md
