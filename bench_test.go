// Benchmarks regenerating the paper's tables and figures, one
// testing.B benchmark per table/figure, plus ablation benchmarks for
// the design choices DESIGN.md calls out. All heavy work is simulated
// machine time; the wall-clock numbers measure the simulator, and the
// custom metrics (reported via b.ReportMetric) carry the reproduced
// result:
//
//	simMcycles    simulated execution time, millions of 8 MHz cycles
//	mips          simulated raw instruction rate (Table 1)
//	efficiency    T_SISD / (p * T_parallel)   (Figures 11/12)
//	crossmuls     SIMD vs S/MIMD crossover multiply count (Figure 7)
//
// Run: go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/experiments"
	"repro/internal/m68k"
	"repro/internal/matmul"
	"repro/internal/pasm"
	"repro/internal/reduce"
	"repro/internal/smoothing"
	"repro/internal/stats"
)

// benchExec runs one spec and reports its simulated cycles.
func benchExec(b *testing.B, cfg pasm.Config, spec matmul.Spec) pasm.RunResult {
	b.Helper()
	a := matmul.Identity(spec.N)
	bm := matmul.Random(spec.N, uint32(spec.N)+77)
	var last pasm.RunResult
	for i := 0; i < b.N; i++ {
		res, c, err := matmul.Execute(cfg, spec, a, bm)
		if err != nil {
			b.Fatal(err)
		}
		if !matmul.Equal(c, bm) {
			b.Fatalf("%s: wrong product", spec.Mode)
		}
		last = res
	}
	b.ReportMetric(float64(last.Cycles)/1e6, "simMcycles")
	return last
}

// BenchmarkTable1RawMIPS regenerates Table 1: raw MIPS in SIMD vs MIMD
// mode for register add and move instructions.
func BenchmarkTable1RawMIPS(b *testing.B) {
	opts := experiments.DefaultOptions()
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(opts)
		if err != nil {
			b.Fatal(err)
		}
		rows = res.Rows
	}
	for _, row := range rows {
		b.Run(row.Instruction+"/"+row.Mode, func(sb *testing.B) {
			for i := 0; i < sb.N; i++ {
				_ = row
			}
			sb.ReportMetric(row.MIPS, "mips")
		})
	}
}

// BenchmarkFig6 regenerates Figure 6's series (execution time vs
// problem size at p=8, one multiply per inner loop) at a bench-sized
// problem; run cmd/pasmbench -exp fig6 -full for the paper's sizes.
func BenchmarkFig6(b *testing.B) {
	cfg := pasm.DefaultConfig()
	const n, p = 32, 8
	for _, mode := range []matmul.Mode{matmul.Serial, matmul.SIMD, matmul.MIMD, matmul.SMIMD} {
		b.Run(mode.String(), func(sb *testing.B) {
			benchExec(sb, cfg, matmul.Spec{N: n, P: p, Muls: 1, Mode: mode})
		})
	}
}

// BenchmarkFig7 regenerates Figure 7: the SIMD vs S/MIMD execution
// times as inner-loop multiplies grow, and the crossover location.
// At the bench size n=32 the crossover sits near 24 multiplies rather
// than the paper's 14 at n=64 — cols = n/p halves, which raises the
// barrier-granularity residual 4*E[maxNormal(p)]/sqrt(cols) exactly as
// internal/model predicts; run `pasmbench -exp fig7` for the paper's
// configuration.
func BenchmarkFig7(b *testing.B) {
	cfg := pasm.DefaultConfig()
	const n, p = 32, 4
	a := matmul.Identity(n)
	bm := matmul.Random(n, 7)
	muls := []int{1, 10, 14, 20, 30}
	var xs []int
	var ys, yh []int64
	for i := 0; i < b.N; i++ {
		xs, ys, yh = xs[:0], ys[:0], yh[:0]
		for _, m := range muls {
			rs, _, err := matmul.Execute(cfg, matmul.Spec{N: n, P: p, Muls: m, Mode: matmul.SIMD}, a, bm)
			if err != nil {
				b.Fatal(err)
			}
			rh, _, err := matmul.Execute(cfg, matmul.Spec{N: n, P: p, Muls: m, Mode: matmul.SMIMD}, a, bm)
			if err != nil {
				b.Fatal(err)
			}
			xs = append(xs, m)
			ys = append(ys, rs.Cycles)
			yh = append(yh, rh.Cycles)
		}
	}
	b.ReportMetric(stats.Crossover(xs, ys, yh), "crossmuls")
}

// benchBreakdown regenerates one of Figures 8-10: the execution-time
// component split at the given inner-loop multiply count.
func benchBreakdown(b *testing.B, muls int) {
	cfg := pasm.DefaultConfig()
	for _, mode := range []matmul.Mode{matmul.SIMD, matmul.SMIMD} {
		b.Run(mode.String(), func(sb *testing.B) {
			res := benchExec(sb, cfg, matmul.Spec{N: 32, P: 4, Muls: muls, Mode: mode})
			total := float64(res.Cycles)
			sb.ReportMetric(100*float64(res.Regions[1])/total, "mult%") // RegionMult
			sb.ReportMetric(100*float64(res.Regions[2])/total, "comm%") // RegionComm
		})
	}
}

// BenchmarkFig8 is the 1-multiply breakdown (Figure 8).
func BenchmarkFig8(b *testing.B) { benchBreakdown(b, 1) }

// BenchmarkFig9 is the 14-multiply breakdown (Figure 9, the crossover
// point).
func BenchmarkFig9(b *testing.B) { benchBreakdown(b, 14) }

// BenchmarkFig10 is the 30-multiply breakdown (Figure 10, where
// S/MIMD wins).
func BenchmarkFig10(b *testing.B) { benchBreakdown(b, 30) }

// BenchmarkFig11 regenerates Figure 11: efficiency vs problem size at
// p=4 (SIMD exceeding 1 is the paper's superlinear speed-up).
func BenchmarkFig11(b *testing.B) {
	cfg := pasm.DefaultConfig()
	const n, p = 32, 4
	a := matmul.Identity(n)
	bm := matmul.Random(n, 11)
	serial, _, err := matmul.Execute(cfg, matmul.Spec{N: n, Muls: 1, Mode: matmul.Serial}, a, bm)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []matmul.Mode{matmul.SIMD, matmul.MIMD, matmul.SMIMD} {
		b.Run(mode.String(), func(sb *testing.B) {
			var eff float64
			for i := 0; i < sb.N; i++ {
				res, _, err := matmul.Execute(cfg, matmul.Spec{N: n, P: p, Muls: 1, Mode: mode}, a, bm)
				if err != nil {
					sb.Fatal(err)
				}
				eff = stats.Efficiency(serial.Cycles, res.Cycles, p)
			}
			sb.ReportMetric(eff, "efficiency")
		})
	}
}

// BenchmarkFig12 regenerates Figure 12: efficiency vs PE count at
// n=64.
func BenchmarkFig12(b *testing.B) {
	cfg := pasm.DefaultConfig()
	const n = 64
	a := matmul.Identity(n)
	bm := matmul.Random(n, 12)
	serial, _, err := matmul.Execute(cfg, matmul.Spec{N: n, Muls: 1, Mode: matmul.Serial}, a, bm)
	if err != nil {
		b.Fatal(err)
	}
	for _, p := range []int{4, 8, 16} {
		b.Run(map[int]string{4: "p4", 8: "p8", 16: "p16"}[p], func(sb *testing.B) {
			var eff float64
			for i := 0; i < sb.N; i++ {
				res, _, err := matmul.Execute(cfg, matmul.Spec{N: n, P: p, Muls: 1, Mode: matmul.SIMD}, a, bm)
				if err != nil {
					sb.Fatal(err)
				}
				eff = stats.Efficiency(serial.Cycles, res.Cycles, p)
			}
			sb.ReportMetric(eff, "efficiency")
		})
	}
}

// --- Ablations (DESIGN.md Section 6) ---------------------------------

// BenchmarkAblationQueueDepth varies the Fetch Unit queue capacity.
// The measured (and architecturally correct) result is that depth
// beyond a couple of instructions is immaterial: the PEs are the
// bottleneck, so one entry of buffering already hides all control
// flow; depth only bounds how far the MC runs ahead.
func BenchmarkAblationQueueDepth(b *testing.B) {
	for _, depth := range []int{8, 32, 128, 1024} {
		b.Run(map[int]string{8: "d8", 32: "d32", 128: "d128", 1024: "d1024"}[depth], func(sb *testing.B) {
			cfg := pasm.DefaultConfig()
			cfg.QueueDepthWords = depth
			res := benchExec(sb, cfg, matmul.Spec{N: 32, P: 4, Muls: 1, Mode: matmul.SIMD})
			sb.ReportMetric(float64(res.PEStarveCycles), "starvecycles")
		})
	}
}

// BenchmarkAblationQueueRate slows the Fetch Unit controller. This is
// the knob superlinearity actually depends on: once the controller
// delivers instruction words slower than the PEs execute them, the
// PEs starve, control flow stops being hidden, and the SIMD advantage
// collapses.
func BenchmarkAblationQueueRate(b *testing.B) {
	for _, wc := range []int64{2, 16, 48} {
		b.Run(map[int64]string{2: "wc2", 16: "wc16", 48: "wc48"}[wc], func(sb *testing.B) {
			cfg := pasm.DefaultConfig()
			cfg.QueueWordCycles = wc
			res := benchExec(sb, cfg, matmul.Spec{N: 32, P: 4, Muls: 1, Mode: matmul.SIMD})
			sb.ReportMetric(float64(res.PEStarveCycles), "starvecycles")
		})
	}
}

// BenchmarkAblationWaitStates removes the DRAM wait-state and refresh
// penalties: the Table 1 SIMD/MIMD gap and part of the SIMD advantage
// disappear.
func BenchmarkAblationWaitStates(b *testing.B) {
	for _, ws := range []int64{0, 1, 2} {
		b.Run(map[int64]string{0: "ws0", 1: "ws1", 2: "ws2"}[ws], func(sb *testing.B) {
			cfg := pasm.DefaultConfig()
			cfg.DRAMWaitStates = ws
			if ws == 0 {
				cfg.RefreshPeriod = 0
			}
			benchExec(sb, cfg, matmul.Spec{N: 32, P: 4, Muls: 1, Mode: matmul.MIMD})
		})
	}
}

// BenchmarkAblationDeterministicMul replaces the data-dependent MULU
// time with its 54-cycle mean: the decoupling benefit — and with it
// the Figure 7 crossover — disappears, confirming the paper's causal
// story.
func BenchmarkAblationDeterministicMul(b *testing.B) {
	const n, p = 32, 4
	a := matmul.Identity(n)
	bm := matmul.Random(n, 13)
	for _, fixed := range []int64{0, 54} {
		name := "data-dependent"
		if fixed > 0 {
			name = "fixed54"
		}
		b.Run(name, func(sb *testing.B) {
			cfg := pasm.DefaultConfig()
			cfg.FixedMulCycles = fixed
			var gain float64
			for i := 0; i < sb.N; i++ {
				rs, _, err := matmul.Execute(cfg, matmul.Spec{N: n, P: p, Muls: 30, Mode: matmul.SIMD}, a, bm)
				if err != nil {
					sb.Fatal(err)
				}
				rh, _, err := matmul.Execute(cfg, matmul.Spec{N: n, P: p, Muls: 30, Mode: matmul.SMIMD}, a, bm)
				if err != nil {
					sb.Fatal(err)
				}
				gain = float64(rs.Cycles-rh.Cycles) / float64(rs.Cycles)
			}
			// Positive: S/MIMD wins at 30 multiplies. With fixed MULU
			// times it goes negative (SIMD always wins).
			sb.ReportMetric(100*gain, "decouplegain%")
		})
	}
}

// BenchmarkSmoothing runs the second workload domain (image
// processing, PASM's design target): a 3x3 mean filter with run-time
// circuit reconfiguration for the halo exchange and quotient-dependent
// DIVU timing in the kernel.
func BenchmarkSmoothing(b *testing.B) {
	cfg := pasm.DefaultConfig()
	const h, w, p = 32, 32, 4
	img := smoothing.RandomImage(h, w, 7)
	want := smoothing.Reference(img)
	for _, mode := range []smoothing.Mode{smoothing.Serial, smoothing.SIMD, smoothing.MIMD, smoothing.SMIMD} {
		b.Run(mode.String(), func(sb *testing.B) {
			var last pasm.RunResult
			for i := 0; i < sb.N; i++ {
				res, out, err := smoothing.Execute(cfg, smoothing.Spec{H: h, W: w, P: p, Mode: mode}, img)
				if err != nil {
					sb.Fatal(err)
				}
				if !smoothing.Equal(out, want) {
					sb.Fatal("wrong image")
				}
				last = res
			}
			sb.ReportMetric(float64(last.Cycles)/1e6, "simMcycles")
		})
	}
}

// BenchmarkAblationComm isolates the communication-protocol choice:
// polling (MIMD) vs Fetch-Unit barriers (S/MIMD) vs implicit lockstep
// (SIMD), at a communication-heavy small n.
func BenchmarkAblationComm(b *testing.B) {
	cfg := pasm.DefaultConfig()
	for _, mode := range []matmul.Mode{matmul.SIMD, matmul.SMIMD, matmul.MIMD} {
		b.Run(mode.String(), func(sb *testing.B) {
			res := benchExec(sb, cfg, matmul.Spec{N: 16, P: 4, Muls: 1, Mode: mode})
			sb.ReportMetric(float64(res.Regions[2]), "commcycles") // RegionComm
		})
	}
}

// BenchmarkReduce runs the recursive-doubling all-reduce (third
// workload): log2(p) cube-permutation reconfigurations plus a
// data-dependent local squaring phase.
func BenchmarkReduce(b *testing.B) {
	cfg := pasm.DefaultConfig()
	const n, p = 1024, 8
	v := reduce.RandomVector(n, 9)
	want := reduce.Reference(v)
	for _, mode := range []reduce.Mode{reduce.Serial, reduce.SIMD, reduce.MIMD, reduce.SMIMD} {
		b.Run(mode.String(), func(sb *testing.B) {
			var last pasm.RunResult
			for i := 0; i < sb.N; i++ {
				res, sums, err := reduce.Execute(cfg, reduce.Spec{N: n, P: p, Mode: mode}, v)
				if err != nil {
					sb.Fatal(err)
				}
				for _, s := range sums {
					if s != want {
						sb.Fatal("wrong sum")
					}
				}
				last = res
			}
			sb.ReportMetric(float64(last.Cycles)/1e6, "simMcycles")
		})
	}
}

// BenchmarkMixedMode measures the true fine-grained mixed-mode
// execution (per-element asynchronous multiply bursts inside the SIMD
// program) against pure SIMD: the mixed/SIMD cycle ratio stays above 1
// at every burst size because the burst's timing variation is
// perfectly correlated (one reused multiplier).
func BenchmarkMixedMode(b *testing.B) {
	cfg := pasm.DefaultConfig()
	for _, mode := range []matmul.Mode{matmul.SIMD, matmul.Mixed} {
		b.Run(mode.String(), func(sb *testing.B) {
			benchExec(sb, cfg, matmul.Spec{N: 32, P: 4, Muls: 14, Mode: mode})
		})
	}
}

// BenchmarkInterpreterSteadyState measures the bare interpreter inner
// loop — execution-table dispatch on an infinite data-processing loop,
// DRAM fetch timing enabled. The steady state must not allocate: the
// per-program execution table is built once on the first step and the
// hot path is an index, a function call, and a cycle add.
func BenchmarkInterpreterSteadyState(b *testing.B) {
	prog := m68k.MustAssemble(`
l:	mulu.w  d1, d0
	add.w   d2, d0
	bra     l
	`)
	c := m68k.NewCPU(prog, m68k.NewMemory(1<<16))
	c.FetchFromMem = true
	c.Mem.WaitStates = 1
	c.Mem.RefreshPeriod = 256
	c.Mem.RefreshStall = 2
	c.D[1] = 0xA5A5
	c.D[2] = 3
	if st := c.Run(16); st != m68k.StatusOK { // warm up: builds the table
		b.Fatalf("warmup status %v", st)
	}
	b.ReportAllocs()
	b.ResetTimer()
	if st := c.Run(int64(b.N)); st != m68k.StatusOK {
		b.Fatalf("status %v (err=%v)", st, c.Err)
	}
}

// BenchmarkInterpreterDynamicPath is the same loop through the dynamic
// reference path (per-step handler resolution and cycle recomputation),
// quantifying what the execution table saves.
func BenchmarkInterpreterDynamicPath(b *testing.B) {
	prog := m68k.MustAssemble(`
l:	mulu.w  d1, d0
	add.w   d2, d0
	bra     l
	`)
	c := m68k.NewCPU(prog, m68k.NewMemory(1<<16))
	c.FetchFromMem = true
	c.Mem.WaitStates = 1
	c.Mem.RefreshPeriod = 256
	c.Mem.RefreshStall = 2
	c.DisableExecTable = true
	c.D[1] = 0xA5A5
	c.D[2] = 3
	b.ReportAllocs()
	b.ResetTimer()
	if st := c.Run(int64(b.N)); st != m68k.StatusOK {
		b.Fatalf("status %v (err=%v)", st, c.Err)
	}
}

// BenchmarkExperimentParallelism runs the Figure 7 sweep with the cell
// fan-out at one worker and at one worker per CPU; on a multi-core
// host the parallel variant's wall clock drops near-linearly while the
// rendered table stays byte-identical.
func BenchmarkExperimentParallelism(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(sb *testing.B) {
			opts := experiments.DefaultOptions()
			opts.Parallelism = workers
			for i := 0; i < sb.N; i++ {
				if _, err := experiments.Fig7(opts); err != nil {
					sb.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelMIMDEngine runs one large MIMD matmul with the
// discrete-event engine advancing PE segments serially and with one
// host goroutine per CPU (simulated result identical in both).
func BenchmarkParallelMIMDEngine(b *testing.B) {
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(sb *testing.B) {
			cfg := pasm.DefaultConfig()
			cfg.HostWorkers = workers
			benchExec(sb, cfg, matmul.Spec{N: 64, P: 16, Muls: 1, Mode: matmul.MIMD})
		})
	}
}
