package repro_test

import (
	"testing"

	"repro/internal/m68k"
)

// TestInterpreterSteadyStateZeroAlloc guards the property that
// BenchmarkInterpreterSteadyState measures: with no observability hooks
// attached, the interpreter's steady-state hot path allocates nothing.
// The detached obs layer must stay one nil pointer test per site.
func TestInterpreterSteadyStateZeroAlloc(t *testing.T) {
	prog := m68k.MustAssemble(`
l:	mulu.w  d1, d0
	add.w   d2, d0
	bra     l
	`)
	c := m68k.NewCPU(prog, m68k.NewMemory(1<<16))
	c.FetchFromMem = true
	c.Mem.WaitStates = 1
	c.Mem.RefreshPeriod = 256
	c.Mem.RefreshStall = 2
	c.D[1] = 0xA5A5
	c.D[2] = 3
	if st := c.Run(16); st != m68k.StatusOK { // warm up: builds the table
		t.Fatalf("warmup status %v", st)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if st := c.Run(4096); st != m68k.StatusOK {
			t.Fatalf("status %v (err=%v)", st, c.Err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state interpreter allocated %.1f objects per run, want 0", allocs)
	}
}
